package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be >= 0 for Prometheus semantics; not enforced).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time float metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// HistogramBuckets is the fixed bucket count of every Histogram. Bucket 0
// holds observations <= 0; bucket i (i >= 1) holds values whose bit length
// is i, i.e. the half-open range [2^(i-1), 2^i); the last bucket also
// absorbs everything larger.
const HistogramBuckets = 32

// Histogram is a fixed log2-bucketed distribution of int64 observations —
// no configuration, no allocation after construction, good enough to see
// whether iteration times cluster at 2^7 or 2^13 cycles.
type Histogram struct {
	buckets [HistogramBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
		if idx >= HistogramBuckets {
			idx = HistogramBuckets - 1
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reports total observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bucket reports the (non-cumulative) count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i].Load() }

// BucketUpper reports the inclusive upper bound of bucket i; the final
// bucket is unbounded (+Inf).
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1<<i - 1
}

// Registry is a flat namespace of typed metrics. Names follow Prometheus
// conventions and may carry a label suffix, e.g.
// `jrpm_tls_commits_total{workload="BitOps"}`. Histograms may be labeled
// too: the exposition writer folds the `le` bucket label into the
// existing label set (`h_bucket{workload="BitOps",le="15"}`).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot renders every metric into a plain map (histograms become
// {count, sum} submaps) — the shape expvar.Func expects.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = map[string]int64{"count": h.Count(), "sum": h.Sum()}
	}
	return out
}

// baseName strips a label suffix: `a_total{x="y"}` -> `a_total`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// splitName separates a metric name into base and comma-form labels:
// `a{x="y"}` -> ("a", `x="y"`); a bare name returns ("a", "").
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	labels = name[i+1:]
	labels = strings.TrimSuffix(labels, "}")
	return name[:i], labels
}

// WritePrometheus renders the registry in Prometheus text exposition
// format, sorted by metric name so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	typeOf := make(map[string]string)
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name := range r.counters {
		names = append(names, name)
		typeOf[baseName(name)] = "counter"
	}
	for name := range r.gauges {
		names = append(names, name)
		typeOf[baseName(name)] = "gauge"
	}
	for name := range r.hists {
		names = append(names, name)
		typeOf[baseName(name)] = "histogram"
	}
	sort.Strings(names)

	typed := make(map[string]bool)
	for _, name := range names {
		base := baseName(name)
		if !typed[base] {
			typed[base] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, typeOf[base]); err != nil {
				return err
			}
		}
		if c, ok := r.counters[name]; ok {
			if _, err := fmt.Fprintf(w, "%s %d\n", name, c.Value()); err != nil {
				return err
			}
			continue
		}
		if g, ok := r.gauges[name]; ok {
			if _, err := fmt.Fprintf(w, "%s %g\n", name, g.Value()); err != nil {
				return err
			}
			continue
		}
		h := r.hists[name]
		// A labeled histogram must fold `le` into its label set and attach
		// the labels to the _bucket/_sum/_count series, not the bare name:
		// `h{w="x"}_sum` is not parseable exposition format.
		hbase, labels := splitName(name)
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		var cum int64
		for i := 0; i < HistogramBuckets; i++ {
			cum += h.Bucket(i)
			le := "+Inf"
			if i < HistogramBuckets-1 {
				le = fmt.Sprint(BucketUpper(i))
			}
			// Skip interior zero buckets to keep output readable;
			// always emit the +Inf bucket.
			if h.Bucket(i) == 0 && i < HistogramBuckets-1 {
				continue
			}
			series := Name(hbase+"_bucket", JoinLabels(labels, fmt.Sprintf("le=%q", le)))
			if _, err := fmt.Fprintf(w, "%s %d\n", series, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n",
			hbase, suffix, h.Sum(), hbase, suffix, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// JoinLabels merges non-empty comma-form label sets:
// JoinLabels(`a="1"`, `b="2"`) -> `a="1",b="2"`.
func JoinLabels(labels ...string) string {
	parts := labels[:0:0]
	for _, l := range labels {
		if l != "" {
			parts = append(parts, l)
		}
	}
	return strings.Join(parts, ",")
}

// Name appends a label set to a metric name: Name("x_total", `w="B"`) ->
// `x_total{w="B"}`. Empty labels return the bare name.
func Name(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}
