package frontend

import (
	"testing"
)

func interpret(t *testing.T, p *Program) []int64 {
	t.Helper()
	out, err := p.Interpret(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestInterpArithmetic(t *testing.T) {
	p := NewProgram("a")
	p.Func("main", nil, false).Body(
		Print(Add(I(2), Mul(I(3), I(4)))),
		Print(Div(I(-7), I(2))), // Java-style truncation: -3
		Print(Rem(I(-7), I(2))), // -1
		Print(Shr(I(-8), I(1))), // arithmetic: -4
		Print(Ushr(I(-1), I(60))),
	)
	out := interpret(t, p)
	want := []int64{14, -3, -1, -4, 15}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestInterpLoopsAndArrays(t *testing.T) {
	p := NewProgram("l")
	p.Func("main", nil, false).Body(
		Set("a", NewArr(I(10))),
		ForUp("i", I(0), I(10),
			SetIdx(L("a"), L("i"), Mul(L("i"), L("i"))),
		),
		Set("s", I(0)),
		ForUp("j", I(0), I(10),
			Set("s", Add(L("s"), Idx(L("a"), L("j")))),
		),
		Print(L("s")),
		Print(Len(L("a"))),
	)
	out := interpret(t, p)
	if out[0] != 285 || out[1] != 10 {
		t.Fatalf("out = %v", out)
	}
}

func TestInterpCallsAndRecursion(t *testing.T) {
	p := NewProgram("c")
	fib := p.Func("fib", []string{"n"}, true)
	fib.Body(
		If(Lt(L("n"), I(2)), S(Ret(L("n"))), nil),
		Ret(Add(CallE(fib, Sub(L("n"), I(1))), CallE(fib, Sub(L("n"), I(2))))),
	)
	p.Func("main", nil, false).Body(Print(CallE(fib, I(10))))
	if out := interpret(t, p); out[0] != 55 {
		t.Fatalf("fib(10) = %v", out)
	}
}

func TestInterpExceptions(t *testing.T) {
	p := NewProgram("e")
	p.Func("main", nil, false).Body(
		Try(S(
			Set("z", I(0)),
			Print(Div(I(1), L("z"))),
		), 0, "e1", S(Print(I(100)))),
		Try(S(
			Set("a", NewArr(I(3))),
			Print(Idx(L("a"), I(5))),
		), 2, "e2", S(Print(I(200)))),
		Try(S(Throw(I(42))), 4, "e3", S(Print(L("e3")))),
	)
	out := interpret(t, p)
	if out[0] != 100 || out[1] != 200 || out[2] != 42 {
		t.Fatalf("out = %v", out)
	}
}

func TestInterpUncaughtException(t *testing.T) {
	p := NewProgram("u")
	p.Func("main", nil, false).Body(Throw(I(1)))
	if _, err := p.Interpret(1000); err == nil {
		t.Fatal("uncaught exception should error")
	}
}

func TestInterpObjectsAndStatics(t *testing.T) {
	p := NewProgram("o")
	node := p.Class("Node", "val", "next")
	tot := p.StaticVar("tot")
	p.Func("main", nil, false).Body(
		Set("n1", NewE(node)),
		SetField(L("n1"), node, "val", I(5)),
		Set("n2", NewE(node)),
		SetField(L("n2"), node, "val", I(7)),
		SetField(L("n2"), node, "next", L("n1")),
		SetStatic(tot, Add(FieldE(L("n2"), node, "val"),
			FieldE(FieldE(L("n2"), node, "next"), node, "val"))),
		Print(StaticE(tot)),
	)
	if out := interpret(t, p); out[0] != 12 {
		t.Fatalf("out = %v", out)
	}
}

func TestInterpFloats(t *testing.T) {
	p := NewProgram("f")
	p.Func("main", nil, false).Body(
		Set("x", F(2.0)),
		Print(ToInt(FMul(Sqrt(L("x")), Sqrt(L("x"))))), // ~2
		Print(Sel(FLt(F(1.5), F(2.5)), I(1), I(0))),
	)
	out := interpret(t, p)
	if out[0] < 1 || out[0] > 2 || out[1] != 1 {
		t.Fatalf("out = %v", out)
	}
}

func TestInterpBreakContinue(t *testing.T) {
	p := NewProgram("bc")
	p.Func("main", nil, false).Body(
		Set("s", I(0)),
		Set("i", I(0)),
		While(Lt(L("i"), I(100)),
			Inc("i", 1),
			If(Eq(Rem(L("i"), I(2)), I(0)), S(Continue()), nil),
			If(Gt(L("i"), I(10)), S(Break()), nil),
			Set("s", Add(L("s"), L("i"))),
		),
		Print(L("s")),
		Print(L("i")),
	)
	out := interpret(t, p)
	// odd i ≤ 9 summed: 1+3+5+7+9 = 25; loop exits at i = 11.
	if out[0] != 25 || out[1] != 11 {
		t.Fatalf("out = %v", out)
	}
}

func TestInterpBudget(t *testing.T) {
	p := NewProgram("inf")
	p.Func("main", nil, false).Body(
		Set("x", I(0)),
		While(Ge(L("x"), I(0)), Inc("x", 1)),
	)
	if _, err := p.Interpret(10_000); err == nil {
		t.Fatal("infinite loop should exhaust the budget")
	}
}

func TestInterpNullDereference(t *testing.T) {
	p := NewProgram("null")
	node := p.Class("N", "v")
	p.Func("main", nil, false).Body(
		Set("x", I(0)),
		Try(S(Print(FieldE(L("x"), node, "v"))), 1, "e", S(Print(I(-5)))),
	)
	if out := interpret(t, p); out[0] != -5 {
		t.Fatalf("out = %v", out)
	}
}
