package frontend

import (
	"fmt"
	"math"

	"jrpm/internal/bytecode"
)

// Interpret executes the program's AST directly as a reference
// implementation, entirely independent of the bytecode, the JIT and the
// machine. It returns the values printed, in order. The differential test
// harness compares it against sequential, profiled and speculative execution
// of the compiled program; any divergence is a bug in the stack.
//
// Semantics mirror the simulated machine exactly: 64-bit integer values
// (floats as IEEE-754 bits), Java-style truncating division, null/bounds/
// arithmetic exceptions catchable by kind, and objects/arrays as word
// records.
func (p *Program) Interpret(maxSteps int64) ([]int64, error) {
	in := &interp{prog: p, statics: make([]int64, len(p.statics)), budget: maxSteps}
	main := p.byName["main"]
	if main == nil {
		return nil, fmt.Errorf("frontend: no main")
	}
	err := in.call(main, nil)
	if err != nil {
		if _, ok := err.(thrown); ok {
			return nil, fmt.Errorf("frontend: uncaught exception")
		}
		return nil, err
	}
	return in.output, nil
}

// Exception kinds, matching the isa constants.
const (
	exNull   = 1
	exBounds = 2
	exArith  = 3
	exUser   = 4
)

// thrown propagates an exception as an error value.
type thrown struct {
	kind int64
	val  int64
}

func (t thrown) Error() string { return fmt.Sprintf("exception kind %d", t.kind) }

// refValue distinguishes heap references; references are indices+1 into the
// interpreter's heap so that 0 stays null.
type object struct {
	fields []int64
	isArr  bool
	lock   int64
}

type interp struct {
	prog    *Program
	statics []int64
	heap    []*object
	output  []int64
	budget  int64
}

type frame struct {
	locals map[string]int64
}

func (in *interp) step() error {
	in.budget--
	if in.budget < 0 {
		return fmt.Errorf("frontend: interpreter budget exhausted")
	}
	return nil
}

func (in *interp) call(f *FuncRef, args []int64) error {
	fr := &frame{locals: map[string]int64{}}
	for i, p := range f.params {
		fr.locals[p] = args[i]
	}
	_, err := in.stmts(fr, f.body)
	return err
}

func (in *interp) callValue(f *FuncRef, args []int64) (int64, error) {
	fr := &frame{locals: map[string]int64{}}
	for i, p := range f.params {
		fr.locals[p] = args[i]
	}
	ret, err := in.stmts(fr, f.body)
	if err != nil {
		return 0, err
	}
	if ret == nil {
		return 0, fmt.Errorf("frontend: value function returned nothing")
	}
	return *ret, nil
}

// stmts executes a statement list; a non-nil *int64 signals a return.
func (in *interp) stmts(fr *frame, list []Stmt) (*int64, error) {
	for _, s := range list {
		ret, err := in.stmt(fr, s)
		if err != nil || ret != nil {
			return ret, err
		}
	}
	return nil, nil
}

type loopBreak struct{}
type loopContinue struct{}

func (loopBreak) Error() string    { return "break" }
func (loopContinue) Error() string { return "continue" }

func (in *interp) stmt(fr *frame, s Stmt) (*int64, error) {
	if err := in.step(); err != nil {
		return nil, err
	}
	switch v := s.(type) {
	case setStmt:
		x, err := in.expr(fr, v.e)
		if err != nil {
			return nil, err
		}
		fr.locals[v.name] = x
		return nil, nil
	case setIdxStmt:
		arr, err := in.expr(fr, v.arr)
		if err != nil {
			return nil, err
		}
		idx, err := in.expr(fr, v.i)
		if err != nil {
			return nil, err
		}
		val, err := in.expr(fr, v.v)
		if err != nil {
			return nil, err
		}
		o, err := in.deref(arr)
		if err != nil {
			return nil, err
		}
		if idx < 0 || idx >= int64(len(o.fields)) {
			return nil, thrown{kind: exBounds}
		}
		o.fields[idx] = val
		return nil, nil
	case setFieldStmt:
		ref, err := in.expr(fr, v.obj)
		if err != nil {
			return nil, err
		}
		val, err := in.expr(fr, v.v)
		if err != nil {
			return nil, err
		}
		o, err := in.deref(ref)
		if err != nil {
			return nil, err
		}
		o.fields[v.off] = val
		return nil, nil
	case setStaticStmt:
		val, err := in.expr(fr, v.v)
		if err != nil {
			return nil, err
		}
		in.statics[v.idx] = val
		return nil, nil
	case incStmt:
		fr.locals[v.name] += v.d
		return nil, nil
	case ifStmt:
		c, err := in.cond(fr, v.c)
		if err != nil {
			return nil, err
		}
		if c {
			return in.stmts(fr, v.then)
		}
		return in.stmts(fr, v.els)
	case whileStmt:
		for {
			c, err := in.cond(fr, v.c)
			if err != nil {
				return nil, err
			}
			if !c {
				return nil, nil
			}
			ret, err := in.stmts(fr, v.body)
			if ret != nil {
				return ret, nil
			}
			if err != nil {
				switch err.(type) {
				case loopBreak:
					return nil, nil
				case loopContinue:
					continue
				default:
					return nil, err
				}
			}
		}
	case retStmt:
		if v.e == nil {
			zero := int64(0)
			return &zero, nil
		}
		x, err := in.expr(fr, v.e)
		if err != nil {
			return nil, err
		}
		return &x, nil
	case printStmt:
		x, err := in.expr(fr, v.e)
		if err != nil {
			return nil, err
		}
		in.output = append(in.output, x)
		return nil, nil
	case exprStmt:
		_, err := in.expr(fr, v.e)
		return nil, err
	case throwStmt:
		x, err := in.expr(fr, v.e)
		if err != nil {
			return nil, err
		}
		return nil, thrown{kind: exUser, val: x}
	case tryStmt:
		ret, err := in.stmts(fr, v.body)
		if ret != nil || err == nil {
			return ret, err
		}
		th, ok := err.(thrown)
		if !ok || (v.kind != 0 && v.kind != th.kind) {
			return nil, err
		}
		val := th.val
		if th.kind != exUser {
			val = 0 // hardware exceptions carry no object
		}
		fr.locals[v.catchVar] = val
		return in.stmts(fr, v.catch)
	case syncStmt:
		ref, err := in.expr(fr, v.obj)
		if err != nil {
			return nil, err
		}
		o, err := in.deref(ref)
		if err != nil {
			return nil, err
		}
		o.lock = 1
		ret, serr := in.stmts(fr, v.body)
		o.lock = 0
		return ret, serr
	case breakStmt:
		return nil, loopBreak{}
	case continueStmt:
		return nil, loopContinue{}
	}
	return nil, fmt.Errorf("frontend: unknown statement %T", s)
}

func (in *interp) deref(ref int64) (*object, error) {
	if ref == 0 {
		return nil, thrown{kind: exNull}
	}
	idx := int(ref>>8) - 1
	if idx < 0 || idx >= len(in.heap) {
		return nil, fmt.Errorf("frontend: bad reference %d", ref)
	}
	return in.heap[idx], nil
}

// alloc returns a machine-address-shaped reference. The exact numeric value
// of references must never leak into program output for differential runs
// to agree; the generator and the kernels only compare and dereference.
func (in *interp) alloc(o *object) int64 {
	in.heap = append(in.heap, o)
	return int64(len(in.heap)) << 8
}

func (in *interp) cond(fr *frame, c Cond) (bool, error) {
	switch v := c.(type) {
	case cmpCond:
		a, err := in.expr(fr, v.a)
		if err != nil {
			return false, err
		}
		b, err := in.expr(fr, v.b)
		if err != nil {
			return false, err
		}
		switch v.op {
		case bytecode.IFICMPEQ:
			return a == b, nil
		case bytecode.IFICMPNE:
			return a != b, nil
		case bytecode.IFICMPLT:
			return a < b, nil
		case bytecode.IFICMPLE:
			return a <= b, nil
		case bytecode.IFICMPGT:
			return a > b, nil
		case bytecode.IFICMPGE:
			return a >= b, nil
		case bytecode.IFFCMPLT:
			return f(a) < f(b), nil
		case bytecode.IFFCMPGE:
			return f(a) >= f(b), nil
		}
		return false, fmt.Errorf("frontend: unknown compare")
	case andCond:
		a, err := in.cond(fr, v.a)
		if err != nil || !a {
			return false, err
		}
		return in.cond(fr, v.b)
	case orCond:
		a, err := in.cond(fr, v.a)
		if err != nil || a {
			return a, err
		}
		return in.cond(fr, v.b)
	case notCond:
		a, err := in.cond(fr, v.c)
		return !a, err
	}
	return false, fmt.Errorf("frontend: unknown condition %T", c)
}

func f(bits int64) float64 { return math.Float64frombits(uint64(bits)) }
func fb(v float64) int64   { return int64(math.Float64bits(v)) }

// binEval implements the two-operand bytecode operators on reference
// values, with the same trap semantics as the machine.
func binEval(op bytecode.Op, a, b int64) (int64, error) {
	switch op {
	case bytecode.IADD:
		return a + b, nil
	case bytecode.ISUB:
		return a - b, nil
	case bytecode.IMUL:
		return a * b, nil
	case bytecode.IDIV:
		if b == 0 {
			return 0, thrown{kind: exArith}
		}
		return a / b, nil
	case bytecode.IREM:
		if b == 0 {
			return 0, thrown{kind: exArith}
		}
		return a % b, nil
	case bytecode.IAND:
		return a & b, nil
	case bytecode.IOR:
		return a | b, nil
	case bytecode.IXOR:
		return a ^ b, nil
	case bytecode.ISHL:
		return a << uint64(b&63), nil
	case bytecode.ISHR:
		return a >> uint64(b&63), nil
	case bytecode.IUSHR:
		return int64(uint64(a) >> uint64(b&63)), nil
	case bytecode.IMIN:
		if a < b {
			return a, nil
		}
		return b, nil
	case bytecode.IMAX:
		if a > b {
			return a, nil
		}
		return b, nil
	case bytecode.FADD:
		return fb(f(a) + f(b)), nil
	case bytecode.FSUB:
		return fb(f(a) - f(b)), nil
	case bytecode.FMUL:
		return fb(f(a) * f(b)), nil
	case bytecode.FDIV:
		return fb(f(a) / f(b)), nil
	case bytecode.FMIN:
		return fb(math.Min(f(a), f(b))), nil
	case bytecode.FMAX:
		return fb(math.Max(f(a), f(b))), nil
	}
	return 0, fmt.Errorf("frontend: unknown binary op %s", op.Name())
}

// unEval implements the one-operand operators.
func unEval(op bytecode.Op, a int64) int64 {
	switch op {
	case bytecode.INEG:
		return -a
	case bytecode.FNEG:
		return fb(-f(a))
	case bytecode.FABS:
		return fb(math.Abs(f(a)))
	case bytecode.F2I:
		return int64(f(a))
	case bytecode.I2F:
		return fb(float64(a))
	case bytecode.FSQRT:
		return fb(math.Sqrt(f(a)))
	case bytecode.FSIN:
		return fb(math.Sin(f(a)))
	case bytecode.FCOS:
		return fb(math.Cos(f(a)))
	case bytecode.FEXP:
		return fb(math.Exp(f(a)))
	case bytecode.FLOG:
		return fb(math.Log(f(a)))
	}
	panic(fmt.Sprintf("frontend: unknown unary op %s", op.Name()))
}

func (in *interp) expr(fr *frame, e Expr) (int64, error) {
	if err := in.step(); err != nil {
		return 0, err
	}
	switch v := e.(type) {
	case intLit:
		return v.v, nil
	case floatLit:
		return fb(v.v), nil
	case localRef:
		x, ok := fr.locals[v.name]
		if !ok {
			return 0, fmt.Errorf("frontend: undefined local %q", v.name)
		}
		return x, nil
	case binExpr:
		a, err := in.expr(fr, v.a)
		if err != nil {
			return 0, err
		}
		b, err := in.expr(fr, v.b)
		if err != nil {
			return 0, err
		}
		return binEval(v.op, a, b)
	case unExpr:
		a, err := in.expr(fr, v.a)
		if err != nil {
			return 0, err
		}
		return unEval(v.op, a), nil
	case callExpr:
		var args []int64
		for _, ae := range v.args {
			x, err := in.expr(fr, ae)
			if err != nil {
				return 0, err
			}
			args = append(args, x)
		}
		return in.callValue(v.fn, args)
	case newExpr:
		return in.alloc(&object{fields: make([]int64, len(v.c.fields))}), nil
	case newArrays:
		n, err := in.expr(fr, v.n)
		if err != nil {
			return 0, err
		}
		if n < 0 {
			return 0, thrown{kind: exBounds}
		}
		return in.alloc(&object{fields: make([]int64, n), isArr: true}), nil
	case idxExpr:
		arr, err := in.expr(fr, v.arr)
		if err != nil {
			return 0, err
		}
		idx, err := in.expr(fr, v.i)
		if err != nil {
			return 0, err
		}
		o, err := in.deref(arr)
		if err != nil {
			return 0, err
		}
		if idx < 0 || idx >= int64(len(o.fields)) {
			return 0, thrown{kind: exBounds}
		}
		return o.fields[idx], nil
	case fieldExpr:
		ref, err := in.expr(fr, v.obj)
		if err != nil {
			return 0, err
		}
		o, err := in.deref(ref)
		if err != nil {
			return 0, err
		}
		return o.fields[v.off], nil
	case staticExpr:
		return in.statics[v.idx], nil
	case lenExpr:
		ref, err := in.expr(fr, v.arr)
		if err != nil {
			return 0, err
		}
		o, err := in.deref(ref)
		if err != nil {
			return 0, err
		}
		return int64(len(o.fields)), nil
	case condExpr:
		c, err := in.cond(fr, v.c)
		if err != nil {
			return 0, err
		}
		if c {
			return in.expr(fr, v.t)
		}
		return in.expr(fr, v.f)
	}
	return 0, fmt.Errorf("frontend: unknown expression %T", e)
}
