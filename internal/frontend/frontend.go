// Package frontend provides a small AST and builder for writing programs
// that compile to Jrpm bytecode — the stand-in for javac in this system.
// The benchmark kernels (package workloads) are written against it.
//
// The language is deliberately Java-shaped: int64/float64 values, local
// variables, static fields, objects with word fields, arrays, static
// methods, while/for loops, if/else with short-circuit conditions,
// try/catch, synchronized blocks, and print. Loops emit the while shape
// (condition at the header, unconditional back edge) that the microJIT's
// loop machinery expects from javac output.
package frontend

import (
	"fmt"
	"math"

	"jrpm/internal/bytecode"
)

// Program accumulates classes, statics and functions.
type Program struct {
	name    string
	classes []*ClassRef
	statics map[string]int
	funcs   []*FuncRef
	byName  map[string]*FuncRef
}

// NewProgram starts an empty program.
func NewProgram(name string) *Program {
	return &Program{name: name, statics: map[string]int{}, byName: map[string]*FuncRef{}}
}

// ClassRef names a declared class and its field layout.
type ClassRef struct {
	id     int
	name   string
	fields map[string]int
}

// Class declares a class with named word fields.
func (p *Program) Class(name string, fields ...string) *ClassRef {
	c := &ClassRef{id: len(p.classes), name: name, fields: map[string]int{}}
	for i, f := range fields {
		c.fields[f] = i
	}
	p.classes = append(p.classes, c)
	return c
}

// FieldOffset returns the word offset of a named field within the object
// body. It panics on unknown fields — a programming error in the kernel.
func (c *ClassRef) FieldOffset(name string) int {
	off, ok := c.fields[name]
	if !ok {
		panic(fmt.Sprintf("frontend: class %s has no field %q", c.name, name))
	}
	return off
}

// StaticVar declares (or returns) a named static field slot.
func (p *Program) StaticVar(name string) int {
	if i, ok := p.statics[name]; ok {
		return i
	}
	i := len(p.statics)
	p.statics[name] = i
	return i
}

// FuncRef is a declared function; fill its Body before Build.
type FuncRef struct {
	prog    *Program
	id      int
	name    string
	params  []string
	returns bool
	body    []Stmt
}

// Func declares a function. Declare all functions before referencing them in
// CallE so mutual recursion works.
func (p *Program) Func(name string, params []string, returns bool) *FuncRef {
	if p.byName[name] != nil {
		panic(fmt.Sprintf("frontend: duplicate function %q", name))
	}
	f := &FuncRef{prog: p, id: len(p.funcs), name: name, params: params, returns: returns}
	p.funcs = append(p.funcs, f)
	p.byName[name] = f
	return f
}

// Body sets the function's statements and returns f for chaining. It
// accepts Stmt and []Stmt items (loop builders like ForUp return slices)
// and flattens them; any other type panics at program-construction time.
func (f *FuncRef) Body(items ...any) *FuncRef {
	f.body = Flatten(items...)
	return f
}

// Flatten turns a mixed list of Stmt and []Stmt into a flat statement list.
func Flatten(items ...any) []Stmt {
	var out []Stmt
	for _, it := range items {
		switch v := it.(type) {
		case Stmt:
			out = append(out, v)
		case []Stmt:
			out = append(out, v...)
		case nil:
		default:
			panic(fmt.Sprintf("frontend: Body item has type %T, want Stmt or []Stmt", it))
		}
	}
	return out
}

// Build compiles the program to verified bytecode. The function named
// "main" is the entry point.
func (p *Program) Build() (*bytecode.Program, error) {
	bp := &bytecode.Program{Name: p.name, Statics: len(p.statics)}
	for _, c := range p.classes {
		bp.Classes = append(bp.Classes, &bytecode.Class{ID: c.id, Name: c.name, NumFields: len(c.fields)})
	}
	main := p.byName["main"]
	if main == nil {
		return nil, fmt.Errorf("frontend: no main function")
	}
	bp.Main = main.id
	for _, f := range p.funcs {
		m, err := f.emit()
		if err != nil {
			return nil, fmt.Errorf("frontend: func %q: %w", f.name, err)
		}
		bp.Methods = append(bp.Methods, m)
	}
	if err := bytecode.Verify(bp); err != nil {
		return nil, fmt.Errorf("frontend: verification: %w", err)
	}
	return bp, nil
}

// MustBuild is Build that panics on error (kernels are static programs).
func (p *Program) MustBuild() *bytecode.Program {
	bp, err := p.Build()
	if err != nil {
		panic(err)
	}
	return bp
}

// ---------- Expressions ----------

// Expr is an expression node.
type Expr interface{ isExpr() }

type (
	intLit   struct{ v int64 }
	floatLit struct{ v float64 }
	localRef struct{ name string }
	binExpr  struct {
		op   bytecode.Op
		a, b Expr
	}
	unExpr struct {
		op bytecode.Op
		a  Expr
	}
	callExpr struct {
		fn   *FuncRef
		args []Expr
	}
	newExpr   struct{ c *ClassRef }
	newArrays struct{ n Expr }
	idxExpr   struct{ arr, i Expr }
	fieldExpr struct {
		obj Expr
		off int
	}
	staticExpr struct{ idx int }
	lenExpr    struct{ arr Expr }
	condExpr   struct {
		c    Cond
		t, f Expr
	}
)

func (intLit) isExpr()     {}
func (floatLit) isExpr()   {}
func (localRef) isExpr()   {}
func (binExpr) isExpr()    {}
func (unExpr) isExpr()     {}
func (callExpr) isExpr()   {}
func (newExpr) isExpr()    {}
func (newArrays) isExpr()  {}
func (idxExpr) isExpr()    {}
func (fieldExpr) isExpr()  {}
func (staticExpr) isExpr() {}
func (lenExpr) isExpr()    {}
func (condExpr) isExpr()   {}

// I is an integer literal.
func I(v int64) Expr { return intLit{v} }

// F is a float literal.
func F(v float64) Expr { return floatLit{v} }

// L references a local variable by name.
func L(name string) Expr { return localRef{name} }

func bin(op bytecode.Op, a, b Expr) Expr { return binExpr{op, a, b} }

// Integer arithmetic.
func Add(a, b Expr) Expr  { return bin(bytecode.IADD, a, b) }
func Sub(a, b Expr) Expr  { return bin(bytecode.ISUB, a, b) }
func Mul(a, b Expr) Expr  { return bin(bytecode.IMUL, a, b) }
func Div(a, b Expr) Expr  { return bin(bytecode.IDIV, a, b) }
func Rem(a, b Expr) Expr  { return bin(bytecode.IREM, a, b) }
func BAnd(a, b Expr) Expr { return bin(bytecode.IAND, a, b) }
func BOr(a, b Expr) Expr  { return bin(bytecode.IOR, a, b) }
func BXor(a, b Expr) Expr { return bin(bytecode.IXOR, a, b) }
func Shl(a, b Expr) Expr  { return bin(bytecode.ISHL, a, b) }
func Shr(a, b Expr) Expr  { return bin(bytecode.ISHR, a, b) }
func Ushr(a, b Expr) Expr { return bin(bytecode.IUSHR, a, b) }
func MinI(a, b Expr) Expr { return bin(bytecode.IMIN, a, b) }
func MaxI(a, b Expr) Expr { return bin(bytecode.IMAX, a, b) }
func Neg(a Expr) Expr     { return unExpr{bytecode.INEG, a} }

// Floating point arithmetic.
func FAdd(a, b Expr) Expr { return bin(bytecode.FADD, a, b) }
func FSub(a, b Expr) Expr { return bin(bytecode.FSUB, a, b) }
func FMul(a, b Expr) Expr { return bin(bytecode.FMUL, a, b) }
func FDiv(a, b Expr) Expr { return bin(bytecode.FDIV, a, b) }
func FMin(a, b Expr) Expr { return bin(bytecode.FMIN, a, b) }
func FMax(a, b Expr) Expr { return bin(bytecode.FMAX, a, b) }
func FNeg(a Expr) Expr    { return unExpr{bytecode.FNEG, a} }
func FAbs(a Expr) Expr    { return unExpr{bytecode.FABS, a} }
func Sqrt(a Expr) Expr    { return unExpr{bytecode.FSQRT, a} }
func Sin(a Expr) Expr     { return unExpr{bytecode.FSIN, a} }
func Cos(a Expr) Expr     { return unExpr{bytecode.FCOS, a} }
func ExpE(a Expr) Expr    { return unExpr{bytecode.FEXP, a} }
func LogE(a Expr) Expr    { return unExpr{bytecode.FLOG, a} }
func ToInt(a Expr) Expr   { return unExpr{bytecode.F2I, a} }
func ToFloat(a Expr) Expr { return unExpr{bytecode.I2F, a} }

// CallE invokes a declared function.
func CallE(fn *FuncRef, args ...Expr) Expr { return callExpr{fn, args} }

// NewE allocates an instance of c.
func NewE(c *ClassRef) Expr { return newExpr{c} }

// NewArr allocates an array of n words.
func NewArr(n Expr) Expr { return newArrays{n} }

// Idx loads arr[i].
func Idx(arr, i Expr) Expr { return idxExpr{arr, i} }

// FieldE loads obj.field.
func FieldE(obj Expr, c *ClassRef, field string) Expr {
	return fieldExpr{obj, c.FieldOffset(field)}
}

// StaticE loads a static field by index (from Program.StaticVar).
func StaticE(idx int) Expr { return staticExpr{idx} }

// Len loads an array's length.
func Len(arr Expr) Expr { return lenExpr{arr} }

// Sel is a conditional expression: c ? t : f.
func Sel(c Cond, t, f Expr) Expr { return condExpr{c, t, f} }

// ---------- Conditions ----------

// Cond is a boolean condition used by If/While.
type Cond interface{ isCond() }

type cmpCond struct {
	op   bytecode.Op // the branch taken when the condition is TRUE
	a, b Expr
}
type andCond struct{ a, b Cond }
type orCond struct{ a, b Cond }
type notCond struct{ c Cond }

func (cmpCond) isCond() {}
func (andCond) isCond() {}
func (orCond) isCond()  {}
func (notCond) isCond() {}

// Integer comparisons.
func Eq(a, b Expr) Cond { return cmpCond{bytecode.IFICMPEQ, a, b} }
func Ne(a, b Expr) Cond { return cmpCond{bytecode.IFICMPNE, a, b} }
func Lt(a, b Expr) Cond { return cmpCond{bytecode.IFICMPLT, a, b} }
func Le(a, b Expr) Cond { return cmpCond{bytecode.IFICMPLE, a, b} }
func Gt(a, b Expr) Cond { return cmpCond{bytecode.IFICMPGT, a, b} }
func Ge(a, b Expr) Cond { return cmpCond{bytecode.IFICMPGE, a, b} }

// Float comparisons (the bytecode provides < and >= natively; the rest are
// derived by operand swap).
func FLt(a, b Expr) Cond { return cmpCond{bytecode.IFFCMPLT, a, b} }
func FGe(a, b Expr) Cond { return cmpCond{bytecode.IFFCMPGE, a, b} }
func FGt(a, b Expr) Cond { return cmpCond{bytecode.IFFCMPLT, b, a} }
func FLe(a, b Expr) Cond { return cmpCond{bytecode.IFFCMPGE, b, a} }

// Boolean combinators (short-circuit).
func AndC(a, b Cond) Cond { return andCond{a, b} }
func OrC(a, b Cond) Cond  { return orCond{a, b} }
func NotC(c Cond) Cond    { return notCond{c} }

// ---------- Statements ----------

// Stmt is a statement node.
type Stmt interface{ isStmt() }

type (
	setStmt struct {
		name string
		e    Expr
	}
	setIdxStmt   struct{ arr, i, v Expr }
	setFieldStmt struct {
		obj Expr
		off int
		v   Expr
	}
	setStaticStmt struct {
		idx int
		v   Expr
	}
	incStmt struct {
		name string
		d    int64
	}
	ifStmt struct {
		c         Cond
		then, els []Stmt
	}
	whileStmt struct {
		c    Cond
		body []Stmt
	}
	retStmt   struct{ e Expr } // nil e = void return
	printStmt struct{ e Expr }
	exprStmt  struct{ e Expr }
	throwStmt struct{ e Expr }
	tryStmt   struct {
		body     []Stmt
		kind     int64
		catchVar string
		catch    []Stmt
	}
	syncStmt struct {
		obj  Expr
		body []Stmt
	}
	breakStmt    struct{}
	continueStmt struct{}
)

func (setStmt) isStmt()       {}
func (setIdxStmt) isStmt()    {}
func (setFieldStmt) isStmt()  {}
func (setStaticStmt) isStmt() {}
func (incStmt) isStmt()       {}
func (ifStmt) isStmt()        {}
func (whileStmt) isStmt()     {}
func (retStmt) isStmt()       {}
func (printStmt) isStmt()     {}
func (exprStmt) isStmt()      {}
func (throwStmt) isStmt()     {}
func (tryStmt) isStmt()       {}
func (syncStmt) isStmt()      {}
func (breakStmt) isStmt()     {}
func (continueStmt) isStmt()  {}

// Set assigns a local variable (declaring it on first use).
func Set(name string, e Expr) Stmt { return setStmt{name, e} }

// SetIdx stores arr[i] = v.
func SetIdx(arr, i, v Expr) Stmt { return setIdxStmt{arr, i, v} }

// SetField stores obj.field = v.
func SetField(obj Expr, c *ClassRef, field string, v Expr) Stmt {
	return setFieldStmt{obj, c.FieldOffset(field), v}
}

// SetStatic stores a static field.
func SetStatic(idx int, v Expr) Stmt { return setStaticStmt{idx, v} }

// Inc adds a constant to a local (emits iinc — the inductor shape).
func Inc(name string, d int64) Stmt { return incStmt{name, d} }

// If branches on c.
func If(c Cond, then []Stmt, els []Stmt) Stmt { return ifStmt{c, then, els} }

// While loops while c holds. Body items may be Stmt or []Stmt.
func While(c Cond, body ...any) Stmt { return whileStmt{c, Flatten(body...)} }

// ForUp is for name = from; name < to; name++ { body }. Note that Continue
// inside the body skips the increment (the loop desugars to a while).
func ForUp(name string, from, to Expr, body ...any) []Stmt {
	return ForStep(name, from, to, 1, body...)
}

// ForStep is ForUp with an arbitrary positive constant step.
func ForStep(name string, from, to Expr, step int64, body ...any) []Stmt {
	b := append(Flatten(body...), Inc(name, step))
	return []Stmt{Set(name, from), While(Lt(L(name), to), b)}
}

// Ret returns a value.
func Ret(e Expr) Stmt { return retStmt{e} }

// RetVoid returns without a value.
func RetVoid() Stmt { return retStmt{nil} }

// Print writes a value to the program output (a system call).
func Print(e Expr) Stmt { return printStmt{e} }

// Do evaluates an expression for effect, discarding any result.
func Do(e Expr) Stmt { return exprStmt{e} }

// Throw raises a user exception carrying e.
func Throw(e Expr) Stmt { return throwStmt{e} }

// Try runs body; an exception of the given isa kind (0 = any) transfers to
// catch with the exception value bound to catchVar.
func Try(body []Stmt, kind int64, catchVar string, catch []Stmt) Stmt {
	return tryStmt{body, kind, catchVar, catch}
}

// Synchronized wraps body in monitorenter/monitorexit on obj.
func Synchronized(obj Expr, body ...any) Stmt { return syncStmt{obj, Flatten(body...)} }

// Break exits the innermost loop.
func Break() Stmt { return breakStmt{} }

// Continue ends the current iteration of the innermost loop.
func Continue() Stmt { return continueStmt{} }

// Block composes mixed Stmt / []Stmt items into one statement list.
func Block(items ...any) []Stmt { return Flatten(items...) }

// S wraps single statements into a slice (readability helper).
func S(stmts ...Stmt) []Stmt { return stmts }

func floatBits(v float64) int64 { return int64(math.Float64bits(v)) }
