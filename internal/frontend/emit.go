package frontend

import (
	"fmt"

	"jrpm/internal/bytecode"
)

// emitter lowers one function's AST to bytecode.
type emitter struct {
	f        *FuncRef
	code     []bytecode.Ins
	locals   map[string]int
	handlers []bytecode.Handler

	labels []int // label id → pc (-1 unbound)
	fixups []struct {
		pc, label int
	}
	loops  []loopLabels
	tmpSeq int
}

type loopLabels struct{ cont, brk int }

func (f *FuncRef) emit() (m *bytecode.Method, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	e := &emitter{f: f, locals: map[string]int{}}
	for _, p := range f.params {
		e.slot(p)
	}
	for _, s := range f.body {
		e.stmt(s)
	}
	if f.returns {
		if len(e.code) == 0 || !e.code[len(e.code)-1].Terminates() {
			panic("value function falls off the end without a return")
		}
	} else {
		// Always terminate void functions: a trailing loop's exit label may
		// point one past the last emitted instruction.
		e.emit(bytecode.RETURN, 0, 0)
	}
	for _, fx := range e.fixups {
		pc := e.labels[fx.label]
		if pc < 0 {
			panic(fmt.Sprintf("unbound label %d", fx.label))
		}
		e.code[fx.pc].A = int64(pc)
	}
	return &bytecode.Method{
		ID:        f.id,
		Name:      f.name,
		NArgs:     len(f.params),
		NLocals:   len(e.locals),
		HasResult: f.returns,
		Code:      e.code,
		Handlers:  e.handlers,
	}, nil
}

func (e *emitter) emit(op bytecode.Op, a, b int64) int {
	e.code = append(e.code, bytecode.Ins{Op: op, A: a, B: b})
	return len(e.code) - 1
}

func (e *emitter) newLabel() int {
	e.labels = append(e.labels, -1)
	return len(e.labels) - 1
}

func (e *emitter) bind(l int) { e.labels[l] = len(e.code) }

func (e *emitter) branch(op bytecode.Op, label int) {
	pc := e.emit(op, -1, 0)
	e.fixups = append(e.fixups, struct{ pc, label int }{pc, label})
}

func (e *emitter) slot(name string) int {
	if s, ok := e.locals[name]; ok {
		return s
	}
	s := len(e.locals)
	e.locals[name] = s
	return s
}

func (e *emitter) knownSlot(name string) int {
	s, ok := e.locals[name]
	if !ok {
		panic(fmt.Sprintf("use of undeclared local %q", name))
	}
	return s
}

// expr emits code leaving the expression's value on the stack.
func (e *emitter) expr(x Expr) {
	switch v := x.(type) {
	case intLit:
		e.emit(bytecode.CONST, v.v, 0)
	case floatLit:
		e.emit(bytecode.FCONST, floatBits(v.v), 0)
	case localRef:
		e.emit(bytecode.LOAD, int64(e.knownSlot(v.name)), 0)
	case binExpr:
		e.expr(v.a)
		e.expr(v.b)
		e.emit(v.op, 0, 0)
	case unExpr:
		e.expr(v.a)
		e.emit(v.op, 0, 0)
	case callExpr:
		if !v.fn.returns {
			panic(fmt.Sprintf("void function %q used as expression", v.fn.name))
		}
		e.call(v)
	case newExpr:
		e.emit(bytecode.NEW, int64(v.c.id), 0)
	case newArrays:
		e.expr(v.n)
		e.emit(bytecode.NEWARRAY, 0, 0)
	case idxExpr:
		e.expr(v.arr)
		e.expr(v.i)
		e.emit(bytecode.ALOAD, 0, 0)
	case fieldExpr:
		e.expr(v.obj)
		e.emit(bytecode.GETFIELD, int64(v.off), 0)
	case staticExpr:
		e.emit(bytecode.GETSTATIC, int64(v.idx), 0)
	case lenExpr:
		e.expr(v.arr)
		e.emit(bytecode.ARRLEN, 0, 0)
	case condExpr:
		els, end := e.newLabel(), e.newLabel()
		e.condFalse(v.c, els)
		e.expr(v.t)
		e.branch(bytecode.GOTO, end)
		e.bind(els)
		e.expr(v.f)
		e.bind(end)
	default:
		panic(fmt.Sprintf("unknown expression %T", x))
	}
}

func (e *emitter) call(v callExpr) {
	if len(v.args) != len(v.fn.params) {
		panic(fmt.Sprintf("call to %q with %d args, want %d", v.fn.name, len(v.args), len(v.fn.params)))
	}
	for _, a := range v.args {
		e.expr(a)
	}
	e.emit(bytecode.INVOKE, int64(v.fn.id), 0)
}

var negate = map[bytecode.Op]bytecode.Op{
	bytecode.IFICMPEQ: bytecode.IFICMPNE, bytecode.IFICMPNE: bytecode.IFICMPEQ,
	bytecode.IFICMPLT: bytecode.IFICMPGE, bytecode.IFICMPGE: bytecode.IFICMPLT,
	bytecode.IFICMPGT: bytecode.IFICMPLE, bytecode.IFICMPLE: bytecode.IFICMPGT,
	bytecode.IFFCMPLT: bytecode.IFFCMPGE, bytecode.IFFCMPGE: bytecode.IFFCMPLT,
}

// condTrue branches to lbl when c holds.
func (e *emitter) condTrue(c Cond, lbl int) {
	switch v := c.(type) {
	case cmpCond:
		e.expr(v.a)
		e.expr(v.b)
		e.branch(v.op, lbl)
	case andCond:
		skip := e.newLabel()
		e.condFalse(v.a, skip)
		e.condTrue(v.b, lbl)
		e.bind(skip)
	case orCond:
		e.condTrue(v.a, lbl)
		e.condTrue(v.b, lbl)
	case notCond:
		e.condFalse(v.c, lbl)
	default:
		panic(fmt.Sprintf("unknown condition %T", c))
	}
}

// condFalse branches to lbl when c does not hold.
func (e *emitter) condFalse(c Cond, lbl int) {
	switch v := c.(type) {
	case cmpCond:
		e.expr(v.a)
		e.expr(v.b)
		e.branch(negate[v.op], lbl)
	case andCond:
		e.condFalse(v.a, lbl)
		e.condFalse(v.b, lbl)
	case orCond:
		ok := e.newLabel()
		e.condTrue(v.a, ok)
		e.condFalse(v.b, lbl)
		e.bind(ok)
	case notCond:
		e.condTrue(v.c, lbl)
	default:
		panic(fmt.Sprintf("unknown condition %T", c))
	}
}

func (e *emitter) stmts(list []Stmt) {
	for _, s := range list {
		e.stmt(s)
	}
}

func (e *emitter) stmt(s Stmt) {
	switch v := s.(type) {
	case setStmt:
		e.expr(v.e)
		e.emit(bytecode.STORE, int64(e.slot(v.name)), 0)
	case setIdxStmt:
		e.expr(v.arr)
		e.expr(v.i)
		e.expr(v.v)
		e.emit(bytecode.ASTORE, 0, 0)
	case setFieldStmt:
		e.expr(v.obj)
		e.expr(v.v)
		e.emit(bytecode.PUTFIELD, int64(v.off), 0)
	case setStaticStmt:
		e.expr(v.v)
		e.emit(bytecode.PUTSTATIC, int64(v.idx), 0)
	case incStmt:
		e.emit(bytecode.IINC, int64(e.knownSlot(v.name)), v.d)
	case ifStmt:
		els := e.newLabel()
		e.condFalse(v.c, els)
		e.stmts(v.then)
		if len(v.els) == 0 {
			e.bind(els)
			return
		}
		end := e.newLabel()
		if len(e.code) == 0 || !e.code[len(e.code)-1].Terminates() {
			e.branch(bytecode.GOTO, end)
		}
		e.bind(els)
		e.stmts(v.els)
		e.bind(end)
	case whileStmt:
		head, exit := e.newLabel(), e.newLabel()
		e.bind(head)
		e.condFalse(v.c, exit)
		e.loops = append(e.loops, loopLabels{cont: head, brk: exit})
		e.stmts(v.body)
		e.loops = e.loops[:len(e.loops)-1]
		e.branch(bytecode.GOTO, head)
		e.bind(exit)
	case retStmt:
		if v.e == nil {
			if e.f.returns {
				panic("void return in value function")
			}
			e.emit(bytecode.RETURN, 0, 0)
			return
		}
		if !e.f.returns {
			panic("value return in void function")
		}
		e.expr(v.e)
		e.emit(bytecode.IRETURN, 0, 0)
	case printStmt:
		e.expr(v.e)
		e.emit(bytecode.PRINT, 0, 0)
	case exprStmt:
		if c, ok := v.e.(callExpr); ok {
			e.call(c)
			if c.fn.returns {
				e.emit(bytecode.POP, 0, 0)
			}
			return
		}
		e.expr(v.e)
		e.emit(bytecode.POP, 0, 0)
	case throwStmt:
		e.expr(v.e)
		e.emit(bytecode.ATHROW, 0, 0)
	case tryStmt:
		start := len(e.code)
		end := e.newLabel()
		e.stmts(v.body)
		bodyEnd := len(e.code)
		if bodyEnd == start {
			panic("empty try body")
		}
		if !e.code[len(e.code)-1].Terminates() {
			e.branch(bytecode.GOTO, end)
		}
		handler := len(e.code)
		e.emit(bytecode.STORE, int64(e.slot(v.catchVar)), 0)
		e.stmts(v.catch)
		e.bind(end)
		e.handlers = append(e.handlers, bytecode.Handler{
			Start: start, End: bodyEnd, Target: handler, Kind: v.kind,
		})
	case syncStmt:
		e.tmpSeq++
		tmp := e.slot(fmt.Sprintf("_sync%d", e.tmpSeq))
		e.expr(v.obj)
		e.emit(bytecode.STORE, int64(tmp), 0)
		e.emit(bytecode.LOAD, int64(tmp), 0)
		e.emit(bytecode.MONITORENTER, 0, 0)
		e.stmts(v.body)
		e.emit(bytecode.LOAD, int64(tmp), 0)
		e.emit(bytecode.MONITOREXIT, 0, 0)
	case breakStmt:
		if len(e.loops) == 0 {
			panic("break outside loop")
		}
		e.branch(bytecode.GOTO, e.loops[len(e.loops)-1].brk)
	case continueStmt:
		if len(e.loops) == 0 {
			panic("continue outside loop")
		}
		e.branch(bytecode.GOTO, e.loops[len(e.loops)-1].cont)
	default:
		panic(fmt.Sprintf("unknown statement %T", s))
	}
}
