package frontend

import (
	"testing"

	"jrpm/internal/bytecode"
	"jrpm/internal/cfg"
)

func TestSimpleSumProgram(t *testing.T) {
	p := NewProgram("sum")
	p.Func("main", nil, false).Body(
		Set("sum", I(0)),
		Block(ForUp("i", I(0), I(10),
			Set("sum", Add(L("sum"), L("i"))),
		)),
		Print(L("sum")),
	)
	bp, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(bp.Methods) != 1 || bp.Methods[0].NLocals != 2 {
		t.Fatalf("methods/locals = %d/%d", len(bp.Methods), bp.Methods[0].NLocals)
	}
	// Structural check: exactly one natural loop with an inductor.
	g := cfg.Build(bp, bp.Methods[0])
	if len(g.Loops) != 1 {
		t.Fatalf("loops = %d", len(g.Loops))
	}
	found := false
	for range g.Loops[0].Inductors {
		found = true
	}
	if !found {
		t.Error("for-loop counter not classified as inductor")
	}
	if _, ok := g.Loops[0].Reductions[0]; !ok {
		t.Errorf("sum not classified as reduction: %v", g.Loops[0].Reductions)
	}
}

func TestCallsAndReturns(t *testing.T) {
	p := NewProgram("call")
	double := p.Func("double", []string{"x"}, true)
	double.Body(Ret(Mul(L("x"), I(2))))
	p.Func("main", nil, false).Body(
		Print(CallE(double, I(21))),
	)
	if _, err := p.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestShortCircuitConditions(t *testing.T) {
	p := NewProgram("cond")
	p.Func("main", nil, false).Body(
		Set("a", I(3)),
		Set("b", I(4)),
		If(AndC(Lt(L("a"), L("b")), OrC(Eq(L("a"), I(3)), Gt(L("b"), I(100)))),
			S(Print(I(1))),
			S(Print(I(0)))),
	)
	if _, err := p.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestBreakContinue(t *testing.T) {
	p := NewProgram("bc")
	p.Func("main", nil, false).Body(
		Set("i", I(0)),
		While(Lt(L("i"), I(100)),
			Inc("i", 1),
			If(Eq(Rem(L("i"), I(2)), I(0)), S(Continue()), nil),
			If(Gt(L("i"), I(50)), S(Break()), nil),
		),
		Print(L("i")),
	)
	if _, err := p.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestTryCatchAndThrow(t *testing.T) {
	p := NewProgram("tc")
	p.Func("main", nil, false).Body(
		Try(
			S(Throw(I(42))),
			0, "e",
			S(Print(L("e"))),
		),
	)
	bp, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(bp.Methods[0].Handlers) != 1 {
		t.Fatal("missing handler table entry")
	}
}

func TestObjectsArraysStatics(t *testing.T) {
	p := NewProgram("obj")
	node := p.Class("Node", "val", "next")
	tot := p.StaticVar("total")
	p.Func("main", nil, false).Body(
		Set("n", NewE(node)),
		SetField(L("n"), node, "val", I(7)),
		Set("a", NewArr(I(10))),
		SetIdx(L("a"), I(3), FieldE(L("n"), node, "val")),
		SetStatic(tot, Add(Idx(L("a"), I(3)), Len(L("a")))),
		Print(StaticE(tot)),
	)
	if _, err := p.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestSynchronizedBlock(t *testing.T) {
	p := NewProgram("sync")
	c := p.Class("Obj", "x")
	p.Func("main", nil, false).Body(
		Set("o", NewE(c)),
		Synchronized(L("o"),
			SetField(L("o"), c, "x", I(1)),
		),
	)
	bp, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	has := map[bytecode.Op]bool{}
	for _, in := range bp.Methods[0].Code {
		has[in.Op] = true
	}
	if !has[bytecode.MONITORENTER] || !has[bytecode.MONITOREXIT] {
		t.Error("monitor ops missing")
	}
}

func TestSelExpression(t *testing.T) {
	p := NewProgram("sel")
	p.Func("main", nil, false).Body(
		Set("x", I(5)),
		Print(Sel(Gt(L("x"), I(3)), I(1), I(0))),
	)
	if _, err := p.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestUndeclaredLocalRejected(t *testing.T) {
	p := NewProgram("bad")
	p.Func("main", nil, false).Body(Print(L("ghost")))
	if _, err := p.Build(); err == nil {
		t.Fatal("use of undeclared local should fail")
	}
}

func TestVoidFallsOffEndGetsReturn(t *testing.T) {
	p := NewProgram("v")
	p.Func("main", nil, false).Body(Set("x", I(1)))
	bp, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	last := bp.Methods[0].Code[len(bp.Methods[0].Code)-1]
	if last.Op != bytecode.RETURN {
		t.Error("implicit return missing")
	}
}

func TestValueFunctionMustReturn(t *testing.T) {
	p := NewProgram("v2")
	p.Func("main", nil, true).Body(Set("x", I(1)))
	if _, err := p.Build(); err == nil {
		t.Fatal("value function without return should fail")
	}
}

func TestFloatOps(t *testing.T) {
	p := NewProgram("f")
	p.Func("main", nil, false).Body(
		Set("x", F(2.0)),
		Set("y", Sqrt(FMul(L("x"), L("x")))),
		If(FLt(L("y"), F(1.9)), S(Print(I(0))), S(Print(I(1)))),
	)
	if _, err := p.Build(); err != nil {
		t.Fatal(err)
	}
}
