package hydra

import (
	"testing"

	"jrpm/internal/isa"
	"jrpm/internal/mem"
	"jrpm/internal/obs"
)

// specMachine builds a booted machine with speculation active so the memory
// hot path runs through the TLS buffers, the exact path the flight recorder
// hooks into.
func specMachine(rec obs.Recorder) *Machine {
	b := isa.NewBuilder()
	b.Emit(isa.Instr{Op: isa.HALT})
	img := image(&Method{Name: "main", Code: b.Finish(), FrameWords: 4})
	opts := DefaultOptions()
	opts.Recorder = rec
	m := NewMachine(img, newStubRuntime(), opts)
	m.Boot()
	m.TLS.Start(1)
	return m
}

// TestRecorderHotPathZeroAlloc is the zero-overhead guarantee: the
// speculative load/store path must not allocate, neither with the recorder
// disabled (nil interface) nor with a live event ring attached.
func TestRecorderHotPathZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		rec  obs.Recorder
	}{
		{"disabled", nil},
		{"ring", obs.NewRing(1 << 12)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := specMachine(tc.rec)
			a := mem.Addr(HeapBase + 64)
			// Warm up: first touch allocates cache/buffer bookkeeping.
			m.RuntimeStore(1, a, 1, ClassAlloc)
			m.RuntimeLoad(1, a, ClassAlloc)
			n := testing.AllocsPerRun(500, func() {
				m.RuntimeStore(1, a, 2, ClassAlloc)
				m.RuntimeLoad(1, a, ClassAlloc)
			})
			if n != 0 {
				t.Fatalf("speculative load/store allocates %.1f per op with recorder=%s, want 0", n, tc.name)
			}
		})
	}
}

// TestRecorderPassive verifies recording does not perturb simulation: the
// same program produces bit-identical cycle counts and output with and
// without a recorder attached.
func TestRecorderPassive(t *testing.T) {
	build := func(rec obs.Recorder) *Machine {
		b := isa.NewBuilder()
		b.Li(isa.T0, 3)
		b.Li(isa.T1, 9)
		b.Op3(isa.ADD, isa.T2, isa.T0, isa.T1)
		b.Emit(isa.Instr{Op: isa.IOPUT, Rs: isa.T2})
		b.Emit(isa.Instr{Op: isa.HALT})
		img := image(&Method{Name: "main", Code: b.Finish(), FrameWords: 4})
		opts := DefaultOptions()
		opts.Recorder = rec
		return run(t, img, opts)
	}
	base := build(nil)
	ring := obs.NewRing(1 << 12)
	traced := build(ring)
	if base.Clock != traced.Clock || base.Instructions != traced.Instructions {
		t.Fatalf("recorder perturbed timing: clock %d vs %d, instrs %d vs %d",
			base.Clock, traced.Clock, base.Instructions, traced.Instructions)
	}
	if len(base.Output) != len(traced.Output) || base.Output[0] != traced.Output[0] {
		t.Fatalf("recorder perturbed output: %v vs %v", base.Output, traced.Output)
	}
}
