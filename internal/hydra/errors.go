package hydra

import (
	"errors"
	"fmt"

	"jrpm/internal/mem"
	"jrpm/internal/tls"
)

// Typed error sentinels surfaced through Machine.Run. Every abnormal
// termination of the simulator core unwraps to exactly one of these (or to
// the tls package's sentinels), so callers can classify failures with
// errors.Is instead of matching panic strings.
var (
	// ErrCycleBudgetExceeded reports that the cycle-budget watchdog fired:
	// the workload did not halt within the budget passed to Run.
	ErrCycleBudgetExceeded = errors.New("hydra: cycle budget exceeded")

	// ErrNoRunnableCPU reports a scheduling deadlock: no CPU is runnable
	// but the program has not halted.
	ErrNoRunnableCPU = errors.New("hydra: no runnable CPU")

	// ErrBadProgram reports malformed or unsupported native code: a PC out
	// of range, an unimplemented opcode, an unknown STL or cp2 register.
	ErrBadProgram = errors.New("hydra: bad program")

	// ErrStackOverflow reports that a simulated call pushed the stack
	// pointer into the heap region.
	ErrStackOverflow = errors.New("hydra: simulated stack overflow")

	// ErrOutOfMemory reports that an allocation still failed after a
	// garbage collection.
	ErrOutOfMemory = errors.New("hydra: out of memory")

	// ErrUncaughtException reports a program exception with no matching
	// handler anywhere on the call stack.
	ErrUncaughtException = errors.New("hydra: uncaught exception")

	// ErrInternal is the recover backstop's sentinel: a panic escaped the
	// simulator core. Reaching it is itself a bug, but it must surface as
	// an error, never crash the embedding process.
	ErrInternal = errors.New("hydra: internal fault")

	// ErrCancelled reports that the run's context was cancelled (caller
	// cancellation or deadline). The wrapped chain includes the context's
	// cause, so errors.Is(err, context.Canceled) and
	// errors.Is(err, context.DeadlineExceeded) also classify it.
	ErrCancelled = errors.New("hydra: run cancelled")

	// ErrSpecViolationStorm re-exports the tls sentinel so callers can
	// classify storms without importing tls.
	ErrSpecViolationStorm = tls.ErrSpecViolationStorm
)

// MemFault is the typed error for an out-of-range data access that reached
// architectural (head/non-speculative) execution. Speculative wild accesses
// do not produce it — they defer like exceptions (§5.1) and die with the
// violated thread.
type MemFault struct {
	CPU    int
	Cycle  int64
	Addr   mem.Addr
	Write  bool
	Method string
	PC     int
}

// Error renders the fault with its execution context.
func (f *MemFault) Error() string {
	op := "load"
	if f.Write {
		op = "store"
	}
	return fmt.Sprintf("hydra: cpu%d %s at address %d out of range (method %s pc %d, cycle %d)",
		f.CPU, op, f.Addr, f.Method, f.PC, f.Cycle)
}

// Unwrap makes errors.Is(f, mem.ErrOutOfRange) true.
func (f *MemFault) Unwrap() error { return mem.ErrOutOfRange }

// badProgram builds an ErrBadProgram with cpu/cycle context.
func (m *Machine) badProgram(c *CPU, format string, args ...any) error {
	return fmt.Errorf("%w: cpu%d at cycle %d: %s", ErrBadProgram, c.ID, m.Clock, fmt.Sprintf(format, args...))
}

// fail halts the machine with a terminal error (the first failure wins).
func (m *Machine) fail(err error) {
	if m.err == nil {
		m.err = err
	}
	m.halted = true
}
