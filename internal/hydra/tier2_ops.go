package hydra

import (
	"math"

	"jrpm/internal/isa"
	"jrpm/internal/mem"
)

// Fused op handlers. Each handler is a top-level function (no captured
// state), so the compiled blocks hold plain code pointers and dispatch is a
// single indirect call — no closure allocation, ever.
//
// Handler contract:
//   - m.Clock holds the instruction's start cycle (runBlock publishes it
//     before the call), so tracer hooks and trap paths see exact clocks.
//   - Return the op's total cycle cost, or a negative divert code before any
//     architectural side effect (t2DivertBounds is the one exception, taken
//     after the length load exactly as the interpreter orders it).
//   - Never write register 0: the compiler specializes rd==0 forms instead,
//     preserving the hardwired-zero invariant without a per-op clear.
//   - Memory handlers run the same loadWord/storeWord as the interpreter
//     and fold the charged latency (c.extra) into the returned cost.

// t2Single selects the handler for one unfused instruction.
func t2Single(in *isa.Instr, pc int) t2op {
	o := t2op{
		imm:    in.Imm,
		imm2:   in.Imm2,
		cost:   isa.Cost(in.Op),
		pc:     int32(pc),
		target: int32(in.Target),
		rd:     uint8(in.Rd),
		rs:     uint8(in.Rs),
		rt:     uint8(in.Rt),
		n:      1,
		op:     in.Op,
	}
	// rd==0 specialization: the interpreter writes r[0] and re-zeroes it
	// after every instruction; tier-2 instead skips the dead write but keeps
	// every side effect (trap checks, memory traffic).
	if in.Rd == isa.Zero && isa.Traits(in.Op).Has(isa.TraitWritesRd) {
		switch in.Op {
		case isa.DIV, isa.REM:
			o.fn = t2DIVz
		case isa.LW:
			o.fn = t2LWz
		case isa.LWNV:
			o.fn = t2LWNVz
		default:
			// Pure ALU/LI/MFC2 into r0: architectural no-op, cost only.
			o.fn = t2CostOnly
		}
		return o
	}
	switch in.Op {
	case isa.NOP:
		o.fn = t2CostOnly
	case isa.ADD:
		if in.Rt == isa.Zero {
			o.fn = t2MOV // the codegen's register move idiom
		} else {
			o.fn = t2ADD
		}
	case isa.SUB:
		o.fn = t2SUB
	case isa.MUL:
		o.fn = t2MUL
	case isa.DIV:
		o.fn = t2DIV
	case isa.REM:
		o.fn = t2REM
	case isa.AND:
		o.fn = t2AND
	case isa.OR:
		o.fn = t2OR
	case isa.XOR:
		o.fn = t2XOR
	case isa.NOR:
		o.fn = t2NOR
	case isa.SLL:
		o.fn = t2SLL
	case isa.SRL:
		o.fn = t2SRL
	case isa.SRA:
		o.fn = t2SRA
	case isa.SLT:
		o.fn = t2SLT
	case isa.SLE:
		o.fn = t2SLE
	case isa.SEQ:
		o.fn = t2SEQ
	case isa.SNE:
		o.fn = t2SNE
	case isa.MIN:
		o.fn = t2MIN
	case isa.MAX:
		o.fn = t2MAX
	case isa.ADDI:
		o.fn = t2ADDI
	case isa.ANDI:
		o.fn = t2ANDI
	case isa.ORI:
		o.fn = t2ORI
	case isa.XORI:
		o.fn = t2XORI
	case isa.SLLI:
		o.fn = t2SLLI
	case isa.SRLI:
		o.fn = t2SRLI
	case isa.SRAI:
		o.fn = t2SRAI
	case isa.SLTI:
		o.fn = t2SLTI
	case isa.LI:
		o.fn = t2LI
	case isa.FADD:
		o.fn = t2FADD
	case isa.FSUB:
		o.fn = t2FSUB
	case isa.FMUL:
		o.fn = t2FMUL
	case isa.FDIV:
		o.fn = t2FDIV
	case isa.FNEG:
		o.fn = t2FNEG
	case isa.FABS:
		o.fn = t2FABS
	case isa.FMIN:
		o.fn = t2FMIN
	case isa.FMAX:
		o.fn = t2FMAX
	case isa.FSLT:
		o.fn = t2FSLT
	case isa.FSLE:
		o.fn = t2FSLE
	case isa.FSEQ:
		o.fn = t2FSEQ
	case isa.CVTIF:
		o.fn = t2CVTIF
	case isa.CVTFI:
		o.fn = t2CVTFI
	case isa.FSQRT:
		o.fn = t2FSQRT
	case isa.FSIN:
		o.fn = t2FSIN
	case isa.FCOS:
		o.fn = t2FCOS
	case isa.FEXP:
		o.fn = t2FEXP
	case isa.FLOG:
		o.fn = t2FLOG
	case isa.LW:
		o.fn = t2LW
	case isa.LWNV:
		o.fn = t2LWNV
	case isa.SW:
		o.fn = t2SW
	case isa.BEQ:
		o.fn = t2BEQ
	case isa.BNE:
		o.fn = t2BNE
	case isa.BLT:
		o.fn = t2BLT
	case isa.BGE:
		o.fn = t2BGE
	case isa.BLE:
		o.fn = t2BLE
	case isa.BGT:
		o.fn = t2BGT
	case isa.J:
		o.fn = t2J
	case isa.LWL:
		o.fn = t2LWL
	case isa.SWL:
		o.fn = t2SWL
	case isa.SLOOP:
		o.fn = t2SLOOP
	case isa.EOI:
		o.fn = t2EOIA
	case isa.ELOOP:
		o.fn = t2ELOOP
	case isa.MFC2:
		if in.Imm == isa.CP2Iteration {
			o.fn = t2MFC2Iter
		} else {
			o.fn = t2MFC2CPU
		}
	case isa.CHKNULL:
		o.fn = t2CHKNULL
	case isa.CHKIDX:
		o.fn = t2CHKIDX
	default:
		// Unreachable: t2Fusable filtered everything else.
		o.fn = t2CostOnly
	}
	return o
}

// t2Fuse tries to fold in and next into one superinstruction. Returns 2 and
// fills o on success, 1 otherwise. Patterns follow what the microJIT
// actually emits (compare-immediate-and-branch, address-compute-then-access,
// bounds-check-then-address): both sub-instructions keep their architectural
// order, and a divert from the second sub-op reports the completed prefix
// via m.t2sub/m.t2cyc so runBlock can settle exact per-instruction state.
func t2Fuse(in, next *isa.Instr, o *t2op) int {
	if !t2Fusable(next) {
		return 1
	}
	switch in.Op {
	case isa.LI:
		// li rd, C ; bcc rs, rd  →  compare rs against the immediate.
		// rs must differ from rd (the branch would otherwise read the new
		// value from its own left operand, which the fused compare skips).
		if next.Op.IsBranch() && next.Rt == in.Rd && next.Rs != in.Rd && in.Rd != isa.Zero {
			*o = t2op{
				imm: in.Imm, cost: 2, target: int32(next.Target),
				rd: uint8(in.Rd), rs: uint8(next.Rs),
				n: 2, op: in.Op, op2: next.Op,
			}
			switch next.Op {
			case isa.BEQ:
				o.fn = t2LIBEQ
			case isa.BNE:
				o.fn = t2LIBNE
			case isa.BLT:
				o.fn = t2LIBLT
			case isa.BGE:
				o.fn = t2LIBGE
			case isa.BLE:
				o.fn = t2LIBLE
			case isa.BGT:
				o.fn = t2LIBGT
			}
			return 2
		}
	case isa.ADD, isa.ADDI:
		// add/addi rd, … ; lw rd2, off(rd)  and the sw form: the address
		// compute feeds the access base. rd2==rd is fine (the load
		// overwrites after the address was used, same as sequentially).
		if in.Rd == isa.Zero {
			return 1
		}
		isAddi := in.Op == isa.ADDI
		if next.Op == isa.LW && next.Rs == in.Rd && next.Rd != isa.Zero {
			*o = t2op{
				imm: in.Imm, imm2: next.Imm, cost: 2,
				rd: uint8(in.Rd), rs: uint8(in.Rs), rt: uint8(in.Rt),
				rd2: uint8(next.Rd),
				n:   2, op: in.Op, op2: next.Op,
			}
			if isAddi {
				o.fn = t2ADDILW
			} else {
				o.fn = t2ADDLW
			}
			return 2
		}
		if next.Op == isa.SW && next.Rs == in.Rd {
			*o = t2op{
				imm: in.Imm, imm2: next.Imm, cost: 2,
				rd: uint8(in.Rd), rs: uint8(in.Rs), rt: uint8(in.Rt),
				rd2: uint8(next.Rt),
				n:   2, op: in.Op, op2: next.Op,
			}
			if isAddi {
				o.fn = t2ADDISW
			} else {
				o.fn = t2ADDSW
			}
			return 2
		}
	case isa.CHKIDX:
		// chkidx rs[rt] ; add rd2, rs2, rd  →  the bounds check feeding the
		// element address compute. The add's Rt rides in o.rd (unused by
		// the check). The check's traps divert with an empty prefix, so
		// exact re-execution or in-place trap both see the chkidx pc.
		if next.Op == isa.ADD && next.Rd != isa.Zero {
			*o = t2op{
				cost: 2,
				rs:   uint8(in.Rs), rt: uint8(in.Rt),
				rd2: uint8(next.Rd), rs2: uint8(next.Rs), rd: uint8(next.Rt),
				n: 2, op: in.Op, op2: next.Op,
			}
			o.fn = t2CHKIDXADD
			return 2
		}
	}
	return 1
}

// --- single-op handlers ---

// t2CostOnly covers NOP and any rd==0 form with no other side effect.
func t2CostOnly(m *Machine, c *CPU, o *t2op) int64 { return o.cost }

func t2MOV(m *Machine, c *CPU, o *t2op) int64 {
	c.Regs[o.rd] = c.Regs[o.rs]
	return o.cost
}

func t2ADD(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = r[o.rs] + r[o.rt]
	return o.cost
}

func t2SUB(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = r[o.rs] - r[o.rt]
	return o.cost
}

func t2MUL(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = r[o.rs] * r[o.rt]
	return o.cost
}

func t2DIV(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	if r[o.rt] == 0 {
		return t2DivertTrap
	}
	r[o.rd] = r[o.rs] / r[o.rt]
	return o.cost
}

func t2REM(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	if r[o.rt] == 0 {
		return t2DivertTrap
	}
	r[o.rd] = r[o.rs] % r[o.rt]
	return o.cost
}

// t2DIVz: DIV/REM into r0 — the quotient is discarded but the zero-divisor
// trap still fires.
func t2DIVz(m *Machine, c *CPU, o *t2op) int64 {
	if c.Regs[o.rt] == 0 {
		return t2DivertTrap
	}
	return o.cost
}

func t2AND(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = r[o.rs] & r[o.rt]
	return o.cost
}

func t2OR(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = r[o.rs] | r[o.rt]
	return o.cost
}

func t2XOR(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = r[o.rs] ^ r[o.rt]
	return o.cost
}

func t2NOR(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = ^(r[o.rs] | r[o.rt])
	return o.cost
}

func t2SLL(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = r[o.rs] << uint64(r[o.rt]&63)
	return o.cost
}

func t2SRL(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = int64(uint64(r[o.rs]) >> uint64(r[o.rt]&63))
	return o.cost
}

func t2SRA(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = r[o.rs] >> uint64(r[o.rt]&63)
	return o.cost
}

func t2SLT(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = b2i(r[o.rs] < r[o.rt])
	return o.cost
}

func t2SLE(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = b2i(r[o.rs] <= r[o.rt])
	return o.cost
}

func t2SEQ(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = b2i(r[o.rs] == r[o.rt])
	return o.cost
}

func t2SNE(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = b2i(r[o.rs] != r[o.rt])
	return o.cost
}

func t2MIN(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	if r[o.rs] < r[o.rt] {
		r[o.rd] = r[o.rs]
	} else {
		r[o.rd] = r[o.rt]
	}
	return o.cost
}

func t2MAX(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	if r[o.rs] > r[o.rt] {
		r[o.rd] = r[o.rs]
	} else {
		r[o.rd] = r[o.rt]
	}
	return o.cost
}

func t2ADDI(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = r[o.rs] + o.imm
	return o.cost
}

func t2ANDI(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = r[o.rs] & o.imm
	return o.cost
}

func t2ORI(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = r[o.rs] | o.imm
	return o.cost
}

func t2XORI(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = r[o.rs] ^ o.imm
	return o.cost
}

func t2SLLI(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = r[o.rs] << uint64(o.imm&63)
	return o.cost
}

func t2SRLI(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = int64(uint64(r[o.rs]) >> uint64(o.imm&63))
	return o.cost
}

func t2SRAI(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = r[o.rs] >> uint64(o.imm&63)
	return o.cost
}

func t2SLTI(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = b2i(r[o.rs] < o.imm)
	return o.cost
}

func t2LI(m *Machine, c *CPU, o *t2op) int64 {
	c.Regs[o.rd] = o.imm
	return o.cost
}

func t2FADD(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = bits(f64(r[o.rs]) + f64(r[o.rt]))
	return o.cost
}

func t2FSUB(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = bits(f64(r[o.rs]) - f64(r[o.rt]))
	return o.cost
}

func t2FMUL(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = bits(f64(r[o.rs]) * f64(r[o.rt]))
	return o.cost
}

func t2FDIV(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = bits(f64(r[o.rs]) / f64(r[o.rt]))
	return o.cost
}

func t2FNEG(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = bits(-f64(r[o.rs]))
	return o.cost
}

func t2FABS(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = bits(math.Abs(f64(r[o.rs])))
	return o.cost
}

func t2FMIN(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = bits(math.Min(f64(r[o.rs]), f64(r[o.rt])))
	return o.cost
}

func t2FMAX(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = bits(math.Max(f64(r[o.rs]), f64(r[o.rt])))
	return o.cost
}

func t2FSLT(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = b2i(f64(r[o.rs]) < f64(r[o.rt]))
	return o.cost
}

func t2FSLE(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = b2i(f64(r[o.rs]) <= f64(r[o.rt]))
	return o.cost
}

func t2FSEQ(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = b2i(f64(r[o.rs]) == f64(r[o.rt]))
	return o.cost
}

func t2CVTIF(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = bits(float64(r[o.rs]))
	return o.cost
}

func t2CVTFI(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = int64(f64(r[o.rs]))
	return o.cost
}

func t2FSQRT(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = bits(math.Sqrt(f64(r[o.rs])))
	return o.cost
}

func t2FSIN(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = bits(math.Sin(f64(r[o.rs])))
	return o.cost
}

func t2FCOS(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = bits(math.Cos(f64(r[o.rs])))
	return o.cost
}

func t2FEXP(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = bits(math.Exp(f64(r[o.rs])))
	return o.cost
}

func t2FLOG(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = bits(math.Log(f64(r[o.rs])))
	return o.cost
}

func t2LW(m *Machine, c *CPU, o *t2op) int64 {
	a := mem.Addr(c.Regs[o.rs] + o.imm)
	if !m.Mem.InRange(a) {
		return t2DivertFault
	}
	c.extra = 0
	c.Regs[o.rd] = m.loadWord(c, a, false, ClassHeap)
	n := o.cost + c.extra
	c.extra = 0
	return n
}

// t2LWz: load into r0 — the value is discarded but the cache access and
// tracer observation still happen.
func t2LWz(m *Machine, c *CPU, o *t2op) int64 {
	a := mem.Addr(c.Regs[o.rs] + o.imm)
	if !m.Mem.InRange(a) {
		return t2DivertFault
	}
	c.extra = 0
	m.loadWord(c, a, false, ClassHeap)
	n := o.cost + c.extra
	c.extra = 0
	return n
}

func t2LWNV(m *Machine, c *CPU, o *t2op) int64 {
	a := mem.Addr(c.Regs[o.rs] + o.imm)
	if !m.Mem.InRange(a) {
		return t2DivertFault
	}
	c.extra = 0
	c.Regs[o.rd] = m.loadWord(c, a, true, ClassHeap)
	n := o.cost + c.extra
	c.extra = 0
	return n
}

func t2LWNVz(m *Machine, c *CPU, o *t2op) int64 {
	a := mem.Addr(c.Regs[o.rs] + o.imm)
	if !m.Mem.InRange(a) {
		return t2DivertFault
	}
	c.extra = 0
	m.loadWord(c, a, true, ClassHeap)
	n := o.cost + c.extra
	c.extra = 0
	return n
}

func t2SW(m *Machine, c *CPU, o *t2op) int64 {
	a := mem.Addr(c.Regs[o.rs] + o.imm)
	if !m.Mem.InRange(a) {
		return t2DivertFault
	}
	c.extra = 0
	m.storeWord(c, a, c.Regs[o.rt], ClassHeap)
	n := o.cost + c.extra
	c.extra = 0
	return n
}

func t2BEQ(m *Machine, c *CPU, o *t2op) int64 {
	if c.Regs[o.rs] == c.Regs[o.rt] {
		c.PC = int(o.target)
	} else {
		c.PC = int(o.pc) + 1
	}
	return o.cost
}

func t2BNE(m *Machine, c *CPU, o *t2op) int64 {
	if c.Regs[o.rs] != c.Regs[o.rt] {
		c.PC = int(o.target)
	} else {
		c.PC = int(o.pc) + 1
	}
	return o.cost
}

func t2BLT(m *Machine, c *CPU, o *t2op) int64 {
	if c.Regs[o.rs] < c.Regs[o.rt] {
		c.PC = int(o.target)
	} else {
		c.PC = int(o.pc) + 1
	}
	return o.cost
}

func t2BGE(m *Machine, c *CPU, o *t2op) int64 {
	if c.Regs[o.rs] >= c.Regs[o.rt] {
		c.PC = int(o.target)
	} else {
		c.PC = int(o.pc) + 1
	}
	return o.cost
}

func t2BLE(m *Machine, c *CPU, o *t2op) int64 {
	if c.Regs[o.rs] <= c.Regs[o.rt] {
		c.PC = int(o.target)
	} else {
		c.PC = int(o.pc) + 1
	}
	return o.cost
}

func t2BGT(m *Machine, c *CPU, o *t2op) int64 {
	if c.Regs[o.rs] > c.Regs[o.rt] {
		c.PC = int(o.target)
	} else {
		c.PC = int(o.pc) + 1
	}
	return o.cost
}

func t2J(m *Machine, c *CPU, o *t2op) int64 {
	c.PC = int(o.target)
	return o.cost
}

func t2LWL(m *Machine, c *CPU, o *t2op) int64 {
	if m.Tracer != nil {
		gslot := uint32(c.MethodID)*256 + uint32(o.imm)
		key := uint64(c.Regs[isa.FP])<<16 | uint64(gslot)
		m.Tracer.OnLocalLoad(key, gslot, m.Clock)
	}
	return o.cost
}

func t2SWL(m *Machine, c *CPU, o *t2op) int64 {
	if m.Tracer != nil {
		gslot := uint32(c.MethodID)*256 + uint32(o.imm)
		key := uint64(c.Regs[isa.FP])<<16 | uint64(gslot)
		m.Tracer.OnLocalStore(key, gslot, m.Clock)
	}
	return o.cost
}

func t2SLOOP(m *Machine, c *CPU, o *t2op) int64 {
	if m.Tracer != nil {
		m.Tracer.OnSloop(o.imm, m.Clock)
	}
	return o.cost
}

// t2EOIA is the EOI annotation (distinct from the STLEOI marker, which is a
// block boundary).
func t2EOIA(m *Machine, c *CPU, o *t2op) int64 {
	if m.Tracer != nil {
		m.Tracer.OnEOI(o.imm, m.Clock)
	}
	return o.cost
}

func t2ELOOP(m *Machine, c *CPU, o *t2op) int64 {
	if m.Tracer != nil {
		m.Tracer.OnEloop(o.imm, m.Clock)
	}
	return o.cost
}

func t2MFC2Iter(m *Machine, c *CPU, o *t2op) int64 {
	c.Regs[o.rd] = m.TLS.Iteration(c.ID)
	return o.cost
}

func t2MFC2CPU(m *Machine, c *CPU, o *t2op) int64 {
	c.Regs[o.rd] = int64(c.ID)
	return o.cost
}

func t2CHKNULL(m *Machine, c *CPU, o *t2op) int64 {
	if c.Regs[o.rs] == 0 {
		return t2DivertTrap
	}
	return o.cost
}

func t2CHKIDX(m *Machine, c *CPU, o *t2op) int64 {
	ref := c.Regs[o.rs]
	if ref == 0 {
		return t2DivertTrap
	}
	a := mem.Addr(ref + 2)
	if !m.Mem.InRange(a) {
		return t2DivertFault
	}
	c.extra = 0
	length := m.loadWord(c, a, false, ClassHeap)
	lat := c.extra
	c.extra = 0
	if idx := c.Regs[o.rt]; idx < 0 || idx >= length {
		// The length load's side effects (cache fill, tracer event) have
		// happened, exactly as the interpreter orders them; its latency is
		// not charged because the interpreter's trap path never charges the
		// trapping instruction either.
		return t2DivertBounds
	}
	return o.cost + lat
}

// --- fused superinstruction handlers ---

func t2LIBEQ(m *Machine, c *CPU, o *t2op) int64 {
	c.Regs[o.rd] = o.imm
	if c.Regs[o.rs] == o.imm {
		c.PC = int(o.target)
	} else {
		c.PC = int(o.pc) + 2
	}
	return o.cost
}

func t2LIBNE(m *Machine, c *CPU, o *t2op) int64 {
	c.Regs[o.rd] = o.imm
	if c.Regs[o.rs] != o.imm {
		c.PC = int(o.target)
	} else {
		c.PC = int(o.pc) + 2
	}
	return o.cost
}

func t2LIBLT(m *Machine, c *CPU, o *t2op) int64 {
	c.Regs[o.rd] = o.imm
	if c.Regs[o.rs] < o.imm {
		c.PC = int(o.target)
	} else {
		c.PC = int(o.pc) + 2
	}
	return o.cost
}

func t2LIBGE(m *Machine, c *CPU, o *t2op) int64 {
	c.Regs[o.rd] = o.imm
	if c.Regs[o.rs] >= o.imm {
		c.PC = int(o.target)
	} else {
		c.PC = int(o.pc) + 2
	}
	return o.cost
}

func t2LIBLE(m *Machine, c *CPU, o *t2op) int64 {
	c.Regs[o.rd] = o.imm
	if c.Regs[o.rs] <= o.imm {
		c.PC = int(o.target)
	} else {
		c.PC = int(o.pc) + 2
	}
	return o.cost
}

func t2LIBGT(m *Machine, c *CPU, o *t2op) int64 {
	c.Regs[o.rd] = o.imm
	if c.Regs[o.rs] > o.imm {
		c.PC = int(o.target)
	} else {
		c.PC = int(o.pc) + 2
	}
	return o.cost
}

// t2ADDLW: add rd, rs, rt ; lw rd2, imm2(rd). A fault in the load diverts
// with the add already committed (m.t2sub=1), matching the interpreter
// having executed and charged the add before the load instruction began.
func t2ADDLW(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = r[o.rs] + r[o.rt]
	a := mem.Addr(r[o.rd] + o.imm2)
	if !m.Mem.InRange(a) {
		m.t2sub, m.t2cyc = 1, 1
		return t2DivertFault
	}
	c.extra = 0
	r[o.rd2] = m.loadWord(c, a, false, ClassHeap)
	n := o.cost + c.extra
	c.extra = 0
	return n
}

func t2ADDILW(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = r[o.rs] + o.imm
	a := mem.Addr(r[o.rd] + o.imm2)
	if !m.Mem.InRange(a) {
		m.t2sub, m.t2cyc = 1, 1
		return t2DivertFault
	}
	c.extra = 0
	r[o.rd2] = m.loadWord(c, a, false, ClassHeap)
	n := o.cost + c.extra
	c.extra = 0
	return n
}

func t2ADDSW(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = r[o.rs] + r[o.rt]
	a := mem.Addr(r[o.rd] + o.imm2)
	if !m.Mem.InRange(a) {
		m.t2sub, m.t2cyc = 1, 1
		return t2DivertFault
	}
	c.extra = 0
	m.storeWord(c, a, r[o.rd2], ClassHeap)
	n := o.cost + c.extra
	c.extra = 0
	return n
}

func t2ADDISW(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	r[o.rd] = r[o.rs] + o.imm
	a := mem.Addr(r[o.rd] + o.imm2)
	if !m.Mem.InRange(a) {
		m.t2sub, m.t2cyc = 1, 1
		return t2DivertFault
	}
	c.extra = 0
	m.storeWord(c, a, r[o.rd2], ClassHeap)
	n := o.cost + c.extra
	c.extra = 0
	return n
}

// t2CHKIDXADD: chkidx rs[rt] ; add rd2, rs2, rd (the add's Rt rides in
// o.rd). Both chkidx traps divert with an empty prefix — null/fault before
// any side effect (re-executed), bounds after the length load (in place).
func t2CHKIDXADD(m *Machine, c *CPU, o *t2op) int64 {
	r := &c.Regs
	ref := r[o.rs]
	if ref == 0 {
		return t2DivertTrap
	}
	a := mem.Addr(ref + 2)
	if !m.Mem.InRange(a) {
		return t2DivertFault
	}
	c.extra = 0
	length := m.loadWord(c, a, false, ClassHeap)
	lat := c.extra
	c.extra = 0
	if idx := r[o.rt]; idx < 0 || idx >= length {
		return t2DivertBounds
	}
	r[o.rd2] = r[o.rs2] + r[o.rd]
	return o.cost + lat
}
