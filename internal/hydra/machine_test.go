package hydra

import (
	"fmt"
	"testing"

	"jrpm/internal/isa"
	"jrpm/internal/mem"
	"jrpm/internal/tls"
)

// stubRuntime is a minimal Runtime for machine-level tests: a bump allocator
// and lock words at ref+1, with no GC.
type stubRuntime struct {
	next  int64
	elide bool // speculation-aware locks
}

func newStubRuntime() *stubRuntime { return &stubRuntime{next: int64(HeapBase)} }

func (s *stubRuntime) Alloc(m *Machine, cpu int, classID int64) (int64, bool) {
	ref := s.next
	s.next += 8
	m.RuntimeStore(cpu, mem.Addr(ref), classID, ClassAlloc)
	return ref, false
}

func (s *stubRuntime) AllocArray(m *Machine, cpu int, length int64) (int64, bool) {
	ref := s.next
	s.next += length + 3
	m.RuntimeStore(cpu, mem.Addr(ref+2), length, ClassAlloc)
	return ref, false
}

func (s *stubRuntime) CollectGarbage(m *Machine, cpu int) { m.ChargeGC(cpu, 1000) }

func (s *stubRuntime) MonitorEnter(m *Machine, cpu int, ref int64) {
	if s.elide && m.SpecActive() {
		return
	}
	m.RuntimeLoad(cpu, mem.Addr(ref+1), ClassLock)
	m.RuntimeStore(cpu, mem.Addr(ref+1), 1, ClassLock)
}

func (s *stubRuntime) MonitorExit(m *Machine, cpu int, ref int64) {
	if s.elide && m.SpecActive() {
		return
	}
	m.RuntimeStore(cpu, mem.Addr(ref+1), 0, ClassLock)
}

func image(methods ...*Method) *Image {
	for i, m := range methods {
		m.ID = i
	}
	return &Image{Name: "test", Methods: methods, STLs: map[int64]*STLDesc{}, Main: 0}
}

func run(t *testing.T, img *Image, opts Options) *Machine {
	t.Helper()
	m := NewMachine(img, newStubRuntime(), opts)
	if err := m.Run(50_000_000); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return m
}

func TestSequentialArithmeticAndOutput(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.T0, 6)
	b.Li(isa.T1, 7)
	b.Op3(isa.MUL, isa.T2, isa.T0, isa.T1)
	b.Emit(isa.Instr{Op: isa.IOPUT, Rs: isa.T2})
	b.Emit(isa.Instr{Op: isa.HALT})
	img := image(&Method{Name: "main", Code: b.Finish(), FrameWords: 4})
	m := run(t, img, DefaultOptions())
	if len(m.Output) != 1 || m.Output[0] != 42 {
		t.Fatalf("output = %v, want [42]", m.Output)
	}
	if m.Clock <= 0 || m.Instructions != 5 {
		t.Errorf("clock=%d instructions=%d", m.Clock, m.Instructions)
	}
}

func TestLoadStoreAndCacheLatency(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.T0, 1000)
	b.Li(isa.T1, 99)
	b.Sw(isa.T1, isa.T0, 0)
	b.Lw(isa.T2, isa.T0, 0)
	b.Emit(isa.Instr{Op: isa.IOPUT, Rs: isa.T2})
	b.Emit(isa.Instr{Op: isa.HALT})
	img := image(&Method{Name: "main", Code: b.Finish(), FrameWords: 4})
	m := run(t, img, DefaultOptions())
	if m.Output[0] != 99 {
		t.Fatalf("round trip = %v", m.Output)
	}
	if m.Mem.Read(1000) != 99 {
		t.Error("memory not written")
	}
}

func TestCallAndReturn(t *testing.T) {
	// callee: v0 = a0 + a1
	cb := isa.NewBuilder()
	cb.Op3(isa.ADD, isa.V0, isa.A0, isa.A1)
	cb.Emit(isa.Instr{Op: isa.RET})
	callee := &Method{Name: "add", Code: cb.Finish(), FrameWords: 2}

	b := isa.NewBuilder()
	b.Li(isa.A0, 30)
	b.Li(isa.A1, 12)
	b.Call(1)
	b.Emit(isa.Instr{Op: isa.IOPUT, Rs: isa.V0})
	b.Emit(isa.Instr{Op: isa.HALT})
	main := &Method{Name: "main", Code: b.Finish(), FrameWords: 4}

	m := run(t, image(main, callee), DefaultOptions())
	if m.Output[0] != 42 {
		t.Fatalf("call result = %v", m.Output)
	}
}

func TestRecursiveCall(t *testing.T) {
	// fib(n): if n < 2 return n; return fib(n-1) + fib(n-2)
	fb := isa.NewBuilder()
	fb.Li(isa.AT, 2)
	fb.Br(isa.BLT, isa.A0, isa.AT, "base")
	// Save n into frame, compute fib(n-1).
	fb.Sw(isa.A0, isa.FP, 0)
	fb.OpImm(isa.ADDI, isa.A0, isa.A0, -1)
	fb.Call(1)
	fb.Sw(isa.V0, isa.FP, 1)
	fb.Lw(isa.A0, isa.FP, 0)
	fb.OpImm(isa.ADDI, isa.A0, isa.A0, -2)
	fb.Call(1)
	fb.Lw(isa.T0, isa.FP, 1)
	fb.Op3(isa.ADD, isa.V0, isa.V0, isa.T0)
	fb.Emit(isa.Instr{Op: isa.RET})
	fb.Label("base")
	fb.Move(isa.V0, isa.A0)
	fb.Emit(isa.Instr{Op: isa.RET})
	fib := &Method{Name: "fib", Code: fb.Finish(), FrameWords: 4}

	b := isa.NewBuilder()
	b.Li(isa.A0, 10)
	b.Call(1)
	b.Emit(isa.Instr{Op: isa.IOPUT, Rs: isa.V0})
	b.Emit(isa.Instr{Op: isa.HALT})
	main := &Method{Name: "main", Code: b.Finish(), FrameWords: 4}

	m := run(t, image(main, fib), DefaultOptions())
	if m.Output[0] != 55 {
		t.Fatalf("fib(10) = %v, want 55", m.Output)
	}
}

func TestExceptionCaughtInMethod(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.T0, 5)
	b.Li(isa.T1, 0)
	b.Op3(isa.DIV, isa.T2, isa.T0, isa.T1) // pc 2: traps
	b.Emit(isa.Instr{Op: isa.HALT})        // skipped
	b.Label("handler")
	b.Li(isa.T3, 77)
	b.Emit(isa.Instr{Op: isa.IOPUT, Rs: isa.T3})
	b.Emit(isa.Instr{Op: isa.HALT})
	code := b.Finish()
	main := &Method{Name: "main", Code: code, FrameWords: 4,
		Handlers: []Handler{{Start: 0, End: 4, Target: 4, Kind: isa.ExArithmetic}}}
	m := run(t, image(main), DefaultOptions())
	if len(m.Output) != 1 || m.Output[0] != 77 {
		t.Fatalf("handler output = %v", m.Output)
	}
}

func TestExceptionPropagatesUpCallStack(t *testing.T) {
	// callee traps with null check; caller catches.
	cb := isa.NewBuilder()
	cb.Emit(isa.Instr{Op: isa.CHKNULL, Rs: isa.A0})
	cb.Li(isa.V0, 1)
	cb.Emit(isa.Instr{Op: isa.RET})
	callee := &Method{Name: "deref", Code: cb.Finish(), FrameWords: 2}

	b := isa.NewBuilder()
	b.Li(isa.A0, 0) // null
	b.Call(1)       // pc 1
	b.Emit(isa.Instr{Op: isa.HALT})
	b.Label("handler")
	b.Li(isa.T0, 88)
	b.Emit(isa.Instr{Op: isa.IOPUT, Rs: isa.T0})
	b.Emit(isa.Instr{Op: isa.HALT})
	main := &Method{Name: "main", Code: b.Finish(), FrameWords: 4,
		Handlers: []Handler{{Start: 0, End: 3, Target: 3, Kind: 0}}}
	m := run(t, image(main, callee), DefaultOptions())
	if len(m.Output) != 1 || m.Output[0] != 88 {
		t.Fatalf("propagated handler output = %v", m.Output)
	}
}

func TestUncaughtExceptionHaltsWithError(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.T0, 1)
	b.Li(isa.T1, 0)
	b.Op3(isa.DIV, isa.T2, isa.T0, isa.T1)
	b.Emit(isa.Instr{Op: isa.HALT})
	img := image(&Method{Name: "main", Code: b.Finish(), FrameWords: 4})
	m := NewMachine(img, newStubRuntime(), DefaultOptions())
	if err := m.Run(1_000_000); err == nil {
		t.Fatal("uncaught exception should error")
	}
}

// buildParallelSTL assembles main() with an STL writing arr[i] = i*i for
// i in [0, n), arr at address base. Layout: fp+0 = i home, fp+1 = limit.
func buildParallelSTL(n, base int64, ncpu int64) *Image {
	b := isa.NewBuilder()
	b.Li(isa.T0, 0)
	b.Sw(isa.T0, isa.FP, 0) // i home = 0
	b.Li(isa.T0, n)
	b.Sw(isa.T0, isa.FP, 1) // limit home
	b.Emit(isa.Instr{Op: isa.STLSTART, Imm: 1})
	b.Label("init")
	b.Emit(isa.Instr{Op: isa.MFC2, Rd: isa.T1, Imm: isa.CP2Iteration})
	b.Lw(isa.S0, isa.FP, 0) // base value of i
	b.Op3(isa.ADD, isa.S0, isa.S0, isa.T1)
	b.Lw(isa.S1, isa.FP, 1) // limit (invariant reload)
	b.Label("top")
	b.Br(isa.BGE, isa.S0, isa.S1, "shutdown")
	b.Op3(isa.MUL, isa.T2, isa.S0, isa.S0)
	b.OpImm(isa.ADDI, isa.T3, isa.S0, base)
	b.Sw(isa.T2, isa.T3, 0)
	b.Emit(isa.Instr{Op: isa.STLEOI})
	b.OpImm(isa.ADDI, isa.S0, isa.S0, ncpu)
	b.Jmp("top")
	b.Label("shutdown")
	b.Emit(isa.Instr{Op: isa.STLSHUTDOWN})
	b.Emit(isa.Instr{Op: isa.HALT})
	code := b.Finish()
	main := &Method{Name: "main", Code: code, FrameWords: 8}
	img := image(main)
	img.STLs[1] = &STLDesc{ID: 1, Method: 0, InitPC: b.LabelPC("init"),
		BodyStart: b.LabelPC("init"), BodyEnd: b.LabelPC("shutdown") + 1}
	return img
}

func TestSTLParallelLoopCorrectAndFast(t *testing.T) {
	const n, base = 64, 100000
	img := buildParallelSTL(n, base, 4)
	m := run(t, img, DefaultOptions())
	for i := int64(0); i < n; i++ {
		if got := m.Mem.Read(mem.Addr(base + i)); got != i*i {
			t.Fatalf("arr[%d] = %d, want %d", i, got, i*i)
		}
	}
	if m.TLS.Violations != 0 {
		t.Errorf("independent loop suffered %d violations", m.TLS.Violations)
	}
	if m.TLS.Commits < n-4 {
		t.Errorf("commits = %d", m.TLS.Commits)
	}

	// The same work on one CPU must be slower.
	img1 := buildParallelSTL(n, base, 1)
	m1 := run(t, img1, Options{NCPU: 1, Handlers: tls.NewHandlers})
	if m1.Clock <= m.Clock {
		t.Errorf("4-CPU run (%d cycles) not faster than 1-CPU (%d cycles)", m.Clock, m1.Clock)
	}
	speedup := float64(m1.Clock) / float64(m.Clock)
	if speedup < 2.0 {
		t.Errorf("speedup = %.2f, want > 2 for an independent loop", speedup)
	}
}

// buildSerializedSTL assembles an STL where every iteration increments a
// shared memory counter early-read/late-write, forcing RAW violations.
func buildSerializedSTL(n int64) *Image {
	const counter = 200000
	b := isa.NewBuilder()
	b.Li(isa.T0, 0)
	b.Sw(isa.T0, isa.FP, 0)
	b.Li(isa.T0, n)
	b.Sw(isa.T0, isa.FP, 1)
	b.Li(isa.T0, 0)
	b.Li(isa.T1, counter)
	b.Sw(isa.T0, isa.T1, 0)
	b.Emit(isa.Instr{Op: isa.STLSTART, Imm: 1})
	b.Label("init")
	b.Emit(isa.Instr{Op: isa.MFC2, Rd: isa.T1, Imm: isa.CP2Iteration})
	b.Lw(isa.S0, isa.FP, 0)
	b.Op3(isa.ADD, isa.S0, isa.S0, isa.T1)
	b.Lw(isa.S1, isa.FP, 1)
	b.Li(isa.S2, counter)
	b.Label("top")
	b.Br(isa.BGE, isa.S0, isa.S1, "shutdown")
	b.Lw(isa.T2, isa.S2, 0) // early read of shared counter
	// Busy work to widen the window.
	for i := 0; i < 10; i++ {
		b.Op3(isa.ADD, isa.T3, isa.T3, isa.T2)
	}
	b.OpImm(isa.ADDI, isa.T2, isa.T2, 1)
	b.Sw(isa.T2, isa.S2, 0) // late write
	b.Emit(isa.Instr{Op: isa.STLEOI})
	b.OpImm(isa.ADDI, isa.S0, isa.S0, 4)
	b.Jmp("top")
	b.Label("shutdown")
	b.Emit(isa.Instr{Op: isa.STLSHUTDOWN})
	b.Emit(isa.Instr{Op: isa.HALT})
	main := &Method{Name: "main", Code: b.Finish(), FrameWords: 8}
	img := image(main)
	img.STLs[1] = &STLDesc{ID: 1, Method: 0, InitPC: b.LabelPC("init"),
		BodyStart: b.LabelPC("init"), BodyEnd: b.LabelPC("shutdown") + 1}
	return img
}

func TestSTLSerializedLoopStaysCorrect(t *testing.T) {
	const n = 40
	m := run(t, buildSerializedSTL(n), DefaultOptions())
	if got := m.Mem.Read(200000); got != n {
		t.Fatalf("counter = %d, want %d (sequential semantics violated)", got, n)
	}
	if m.TLS.Violations == 0 {
		t.Error("dependent loop should suffer violations")
	}
	st := m.TLS.Stats
	if st.RunViolated == 0 {
		t.Error("violated work should be accounted")
	}
}

func TestSTLStateAccountingSumsSane(t *testing.T) {
	m := run(t, buildParallelSTL(64, 100000, 4), DefaultOptions())
	st := m.TLS.Stats
	if st.RunUsed == 0 || st.Overhead == 0 {
		t.Errorf("stats: %+v", st)
	}
	if st.Serial == 0 {
		t.Error("pre-loop setup should be serial time")
	}
}

func TestMFC2CPUID(t *testing.T) {
	b := isa.NewBuilder()
	b.Emit(isa.Instr{Op: isa.MFC2, Rd: isa.T0, Imm: isa.CP2CPUID})
	b.Emit(isa.Instr{Op: isa.IOPUT, Rs: isa.T0})
	b.Emit(isa.Instr{Op: isa.HALT})
	m := run(t, image(&Method{Name: "main", Code: b.Finish(), FrameWords: 2}), DefaultOptions())
	if m.Output[0] != 0 {
		t.Fatalf("master cpu id = %v", m.Output)
	}
}

func TestAllocatorTrafficVisible(t *testing.T) {
	b := isa.NewBuilder()
	b.Emit(isa.Instr{Op: isa.ALLOC, Rd: isa.T0, Imm: 3})
	b.Lw(isa.T1, isa.T0, 0) // read class word back
	b.Emit(isa.Instr{Op: isa.IOPUT, Rs: isa.T1})
	b.Emit(isa.Instr{Op: isa.HALT})
	m := run(t, image(&Method{Name: "main", Code: b.Finish(), FrameWords: 2}), DefaultOptions())
	if m.Output[0] != 3 {
		t.Fatalf("allocated header = %v", m.Output)
	}
}

func TestCycleBudgetEnforced(t *testing.T) {
	b := isa.NewBuilder()
	b.Label("spin")
	b.Jmp("spin")
	img := image(&Method{Name: "main", Code: b.Finish(), FrameWords: 2})
	m := NewMachine(img, newStubRuntime(), DefaultOptions())
	if err := m.Run(10_000); err == nil {
		t.Fatal("infinite loop should exceed budget")
	}
}

// TestSavedRegisterRestoreOnUnwind: an exception that abandons a callee
// frame must restore the callee-saved registers its prologue stored (the
// epilogue never runs), or the caller's register-allocated locals corrupt.
func TestSavedRegisterRestoreOnUnwind(t *testing.T) {
	// callee: saves S0, clobbers it, then throws.
	cb := isa.NewBuilder()
	cb.Sw(isa.S0, isa.FP, 0) // prologue save (SaveBase = 0)
	cb.Li(isa.S0, 9999)      // clobber
	cb.Li(isa.T0, 1)
	cb.Emit(isa.Instr{Op: isa.THROW, Rs: isa.T0})
	callee := &Method{Name: "boom", Code: cb.Finish(), FrameWords: 2,
		SavedRegs: []isa.Reg{isa.S0}, SaveBase: 0}

	b := isa.NewBuilder()
	b.Li(isa.S0, 42) // caller's precious register-allocated local
	b.Call(1)        // pc 1: throws
	b.Emit(isa.Instr{Op: isa.HALT})
	b.Label("handler")
	b.Emit(isa.Instr{Op: isa.IOPUT, Rs: isa.S0}) // must print 42, not 9999
	b.Emit(isa.Instr{Op: isa.HALT})
	main := &Method{Name: "main", Code: b.Finish(), FrameWords: 4,
		Handlers: []Handler{{Start: 0, End: 3, Target: 3, Kind: 0}}}

	m := run(t, image(main, callee), DefaultOptions())
	if len(m.Output) != 1 || m.Output[0] != 42 {
		t.Fatalf("unwind did not restore callee-saved register: output %v", m.Output)
	}
}

// TestHoistedSTLCheaperOnRepeatEntry: repeat entries of a hoisted STL pay a
// reduced startup handler (§4.2.7).
func TestHoistedSTLCheaperOnRepeatEntry(t *testing.T) {
	// Two STL entries in sequence sharing one descriptor: the second entry
	// of the hoisted variant pays the reduced startup.
	mk := func(hoisted bool) int64 {
		b := isa.NewBuilder()
		for rep := 0; rep < 2; rep++ {
			b.Li(isa.T0, 0)
			b.Sw(isa.T0, isa.FP, 0)
			b.Li(isa.T0, 8)
			b.Sw(isa.T0, isa.FP, 1)
			b.Emit(isa.Instr{Op: isa.STLSTART, Imm: 1})
			init := b.PC()
			b.Emit(isa.Instr{Op: isa.MFC2, Rd: isa.T1, Imm: isa.CP2Iteration})
			b.Lw(isa.S0, isa.FP, 0)
			b.Op3(isa.ADD, isa.S0, isa.S0, isa.T1)
			b.Lw(isa.S1, isa.FP, 1)
			top := fmt.Sprintf("top%d", rep)
			shut := fmt.Sprintf("shut%d", rep)
			b.Label(top)
			b.Br(isa.BGE, isa.S0, isa.S1, shut)
			b.OpImm(isa.ADDI, isa.T3, isa.S0, 130000)
			b.Sw(isa.S0, isa.T3, 0)
			b.Emit(isa.Instr{Op: isa.STLEOI})
			b.OpImm(isa.ADDI, isa.S0, isa.S0, 4)
			b.Jmp(top)
			b.Label(shut)
			b.Emit(isa.Instr{Op: isa.STLSHUTDOWN})
			_ = init
		}
		b.Emit(isa.Instr{Op: isa.HALT})
		code := b.Finish()
		img := image(&Method{Name: "main", Code: code, FrameWords: 8})
		img.STLs[1] = &STLDesc{ID: 1, Method: 0, InitPC: 5, Hoisted: hoisted,
			BodyStart: 0, BodyEnd: len(code)}
		m := run(t, img, DefaultOptions())
		return m.Clock
	}
	plain := mk(false)
	hoisted := mk(true)
	if hoisted >= plain {
		t.Fatalf("hoisted repeat entry should be cheaper: %d vs %d cycles", hoisted, plain)
	}
}

// TestSpeculativeIOOrdering: an IOPUT executed by a speculative thread
// defers until the thread is the head, so output appears in sequential
// iteration order no matter how execution interleaves.
func TestSpeculativeIOOrdering(t *testing.T) {
	const n = 24
	b := isa.NewBuilder()
	b.Li(isa.T0, 0)
	b.Sw(isa.T0, isa.FP, 0)
	b.Li(isa.T0, n)
	b.Sw(isa.T0, isa.FP, 1)
	b.Emit(isa.Instr{Op: isa.STLSTART, Imm: 1})
	b.Label("init")
	b.Emit(isa.Instr{Op: isa.MFC2, Rd: isa.T1, Imm: isa.CP2Iteration})
	b.Lw(isa.S0, isa.FP, 0)
	b.Op3(isa.ADD, isa.S0, isa.S0, isa.T1)
	b.Lw(isa.S1, isa.FP, 1)
	b.Label("top")
	b.Br(isa.BGE, isa.S0, isa.S1, "shutdown")
	// Variable-length busy work so CPUs finish out of order.
	b.OpImm(isa.ANDI, isa.T2, isa.S0, 3)
	b.Label("spin")
	b.Br(isa.BLE, isa.T2, isa.Zero, "emit")
	b.OpImm(isa.ADDI, isa.T2, isa.T2, -1)
	b.Op3(isa.MUL, isa.T3, isa.T2, isa.T2)
	b.Jmp("spin")
	b.Label("emit")
	b.Emit(isa.Instr{Op: isa.IOPUT, Rs: isa.S0})
	b.Emit(isa.Instr{Op: isa.STLEOI})
	b.OpImm(isa.ADDI, isa.S0, isa.S0, 4)
	b.Jmp("top")
	b.Label("shutdown")
	b.Emit(isa.Instr{Op: isa.STLSHUTDOWN})
	b.Emit(isa.Instr{Op: isa.HALT})
	code := b.Finish()
	img := image(&Method{Name: "main", Code: code, FrameWords: 8})
	img.STLs[1] = &STLDesc{ID: 1, Method: 0, InitPC: b.LabelPC("init"),
		BodyStart: b.LabelPC("init"), BodyEnd: b.LabelPC("shutdown") + 1}
	m := run(t, img, DefaultOptions())
	if len(m.Output) != n {
		t.Fatalf("output length %d, want %d", len(m.Output), n)
	}
	for i, v := range m.Output {
		if v != int64(i) {
			t.Fatalf("output out of order at %d: %v", i, m.Output)
		}
	}
}
