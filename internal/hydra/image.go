// Package hydra simulates the Hydra chip multiprocessor executing compiled
// native code: four (configurable) single-issue cores with private L1
// caches over a shared L2, thread-level speculation support (package tls),
// and the TEST profile hardware (package tracer) observing the memory
// system during annotated runs.
//
// The machine executes an Image — the native-code output of the microJIT —
// and orchestrates the STL protocol of the paper's Figure 4: the master CPU
// enters an STL and wakes the slaves; iterations are distributed round
// robin; threads wait to become the head before committing at end of
// iteration; RAW violations redirect threads to the STL restart point;
// loop exit shuts speculation down and the exiting CPU resumes serial
// execution as the new master.
package hydra

import (
	"jrpm/internal/isa"
	"jrpm/internal/mem"
	"jrpm/internal/obs"
	"jrpm/internal/tracer"
)

// Handler is a native-pc exception table entry (translated from the
// bytecode handler table by the JIT). Kind 0 catches everything.
type Handler struct {
	Start  int
	End    int
	Target int
	Kind   int64
}

// Method is one natively compiled method.
type Method struct {
	ID         int
	Name       string
	Code       isa.Code
	FrameWords int64 // stack frame size (locals homes, spills, STL slots)
	Handlers   []Handler
	// SavedRegs lists the callee-saved registers the method's prologue
	// stores at frame offsets SaveBase+i; exception unwinding restores them
	// (the epilogue restores them on normal return).
	SavedRegs []isa.Reg
	SaveBase  int64
	// Frame is the JIT's debug table: one entry per frame word, classifying
	// it as a bytecode local home, callee-save slot, STL bookkeeping word
	// (resetable-inductor base, lock word, reduction partial) or spill. The
	// doctor symbolizes violation addresses in the stack region through it.
	Frame []obs.FrameSlot
}

// STLDesc describes one compiled speculative thread loop region.
type STLDesc struct {
	ID     int64 // STL id carried by the STLSTART/STLSWSTART instruction
	LoopID int64 // the cfg global loop id this STL was selected from
	Method int   // method containing the loop
	InitPC int   // restart target (the STL_INIT label of Figures 4-5)
	// [BodyStart, BodyEnd) spans the compiled STL region; exceptions caught
	// at a handler inside this range stay speculative (§5.1).
	BodyStart int
	BodyEnd   int
	Inner     bool // an inner STL reached via STLSWSTART (§4.2.6)
	// Hoisted marks STLs whose slave wake-up half of the startup/shutdown
	// handlers was hoisted to the enclosing method or loop (§4.2.7): the
	// slaves stay spun-up between entries, so repeat entries pay a reduced
	// handler cost.
	Hoisted bool
}

// Hoisted handler savings: more than half the startup/shutdown handler is
// slave wake-up and speculation-hardware initialization (§4.2.7), which a
// hoisted STL pays only on its first entry.
const (
	HoistStartupSaving  = 14
	HoistShutdownSaving = 10
)

// Image is a complete native program.
type Image struct {
	Name    string
	Methods []*Method
	STLs    map[int64]*STLDesc
	Main    int
	// Statics is the number of static field words placed at the globals
	// base (addressed off $gp).
	Statics int
}

// Method returns the compiled method with the given id.
func (img *Image) Method(id int) *Method { return img.Methods[id] }

// Runtime is the VM service interface the machine calls for allocation,
// garbage collection and monitors. Implementations perform their memory
// traffic through the machine's RuntimeLoad/RuntimeStore accessors so that
// the TLS hardware and the TEST profiler observe the dependencies (free
// list heads, object lock words).
type Runtime interface {
	// Alloc allocates an instance of class classID and returns its
	// reference, or gcNeeded=true if a collection must run first.
	Alloc(m *Machine, cpu int, classID int64) (ref int64, gcNeeded bool)
	// AllocArray allocates an array of length words.
	AllocArray(m *Machine, cpu int, length int64) (ref int64, gcNeeded bool)
	// CollectGarbage runs a stop-the-world collection; it must charge its
	// cost via Machine.ChargeGC.
	CollectGarbage(m *Machine, cpu int)
	// MonitorEnter/MonitorExit implement the synchronized object lock
	// (§5.3): the speculation-aware implementation elides the lock-word
	// traffic while speculation is active.
	MonitorEnter(m *Machine, cpu int, ref int64)
	MonitorExit(m *Machine, cpu int, ref int64)
}

// HeapZeroer is an optional Runtime capability: implementations whose
// allocators zero every word of every block (including any carve slack)
// before handing it out, and whose collectors read heap words only inside
// allocated blocks or maintained free-list headers. A machine running such a
// runtime never observes an uninitialized heap word, so its simulated memory
// can be recycled without re-zeroing the heap span — by far the largest part
// of the release-time memclr cost.
type HeapZeroer interface {
	// ZeroesHeap reports that no heap word is read before the runtime
	// initializes it.
	ZeroesHeap() bool
}

// AddrClass tags runtime memory traffic so the TEST analysis can separate
// VM-internal dependencies (allocator free lists, object lock words) that
// the VM modifications of §5.2/§5.3 remove during speculation.
type AddrClass = tracer.AddrClass

// Address classes, re-exported from the tracer.
const (
	ClassHeap  = tracer.ClassHeap
	ClassAlloc = tracer.ClassAlloc
	ClassLock  = tracer.ClassLock
	ClassStack = tracer.ClassStack
)

// StackRegionBase is the lowest address belonging to the runtime stacks;
// the machine classifies accesses at or above it as ClassStack for the
// profiler.
const StackRegionBase mem.Addr = 1 << 21

// Multilevel switch handler costs (§4.2.6 "low-overhead handlers"; the
// paper does not tabulate them — they are a fraction of the full
// startup/shutdown cost because the slave CPUs are already awake).
const (
	SwitchStartupCost  = 12
	SwitchShutdownCost = 12
)

// Memory layout of the simulated address space (word addresses). Address 0
// is the null page and never allocated.
const (
	GlobalBase mem.Addr = 64      // static fields
	HeapBase   mem.Addr = 1 << 12 // VM heap
	StackTop   mem.Addr = 1 << 22 // runtime stack, grows down
	MemWords            = 1<<22 + 4096
)
