package hydra

import (
	"context"
	"testing"

	"jrpm/internal/isa"
	"jrpm/internal/mem"
)

// gcOnceRuntime forces one real GC quiesce: the first allocation reports
// gcNeeded, the machine parks the CPU and runs the collector, then the
// retry succeeds through the embedded stub.
type gcOnceRuntime struct {
	*stubRuntime
	forced bool
}

func (g *gcOnceRuntime) Alloc(m *Machine, cpu int, classID int64) (int64, bool) {
	if !g.forced {
		g.forced = true
		return 0, true
	}
	return g.stubRuntime.Alloc(m, cpu, classID)
}

// runTiered executes the same image twice — tier-2 on and off — under
// identical options and asserts every architectural observable matches:
// clock, instruction count, output, GC runs, and the error (or its absence).
// It returns the tier-on machine for demotion-counter assertions.
func runTiered(t *testing.T, img *Image, opts Options, rt func() Runtime, maxCycles int64) *Machine {
	t.Helper()
	if rt == nil {
		rt = func() Runtime { return newStubRuntime() }
	}
	on := NewMachine(img, rt(), opts)
	errOn := on.Run(maxCycles)

	offOpts := opts
	offOpts.Tier2Off = true
	off := NewMachine(img, rt(), offOpts)
	errOff := off.Run(maxCycles)

	if on.t2 == nil {
		t.Fatal("tier-2 engine not attached to the tier-on machine")
	}
	if off.t2 != nil {
		t.Fatal("tier-2 engine attached despite Tier2Off")
	}
	if (errOn == nil) != (errOff == nil) {
		t.Fatalf("error divergence: tier-on %v, tier-off %v", errOn, errOff)
	}
	if errOn != nil && errOn.Error() != errOff.Error() {
		t.Fatalf("error text divergence:\n  tier-on:  %v\n  tier-off: %v", errOn, errOff)
	}
	if on.Clock != off.Clock {
		t.Fatalf("clock divergence: tier-on %d, tier-off %d", on.Clock, off.Clock)
	}
	if on.Instructions != off.Instructions {
		t.Fatalf("instruction divergence: tier-on %d, tier-off %d", on.Instructions, off.Instructions)
	}
	if len(on.Output) != len(off.Output) {
		t.Fatalf("output length divergence: %v vs %v", on.Output, off.Output)
	}
	for i := range on.Output {
		if on.Output[i] != off.Output[i] {
			t.Fatalf("output divergence at %d: %v vs %v", i, on.Output, off.Output)
		}
	}
	if on.GCRuns != off.GCRuns {
		t.Fatalf("GC divergence: tier-on %d runs, tier-off %d", on.GCRuns, off.GCRuns)
	}
	return on
}

// TestTier2DemotionMatrix drives one workload per demotion reason through
// both tiers and asserts (a) bit-identical results and (b) that the engine
// actually demoted for the expected reason — proving the interpreter, not a
// fused block, executed every speculation boundary, trap, data fault, GC
// quiesce, and cancellation poll edge.
func TestTier2DemotionMatrix(t *testing.T) {
	type tcase struct {
		name      string
		img       func() *Image
		opts      func() Options
		rt        func() Runtime
		maxCycles int64
		reason    DemoteReason
		wantErr   bool
		check     func(t *testing.T, m *Machine)
	}
	cases := []tcase{
		{
			// Every STL marker interprets; tier-2 covers only the serial
			// prologue/epilogue around the speculative region.
			name:   "spec/stl-loop",
			img:    func() *Image { return buildParallelSTL(64, 100000, 4) },
			reason: DemoteSpec,
			check: func(t *testing.T, m *Machine) {
				for i := int64(0); i < 64; i++ {
					if got := m.Mem.Read(mem.Addr(100000 + i)); got != i*i {
						t.Fatalf("arr[%d] = %d, want %d", i, got, i*i)
					}
				}
				if m.Tier.Promotions == 0 {
					t.Error("serial prologue should have promoted into tier-2")
				}
			},
		},
		{
			name: "call/ret",
			img: func() *Image {
				cb := isa.NewBuilder()
				cb.Op3(isa.ADD, isa.V0, isa.A0, isa.A1)
				cb.Emit(isa.Instr{Op: isa.RET})
				callee := &Method{Name: "add", Code: cb.Finish(), FrameWords: 2}
				b := isa.NewBuilder()
				b.Li(isa.A0, 30)
				b.Li(isa.A1, 12)
				b.Call(1)
				b.Emit(isa.Instr{Op: isa.IOPUT, Rs: isa.V0})
				b.Emit(isa.Instr{Op: isa.HALT})
				return image(&Method{Name: "main", Code: b.Finish(), FrameWords: 4}, callee)
			},
			reason: DemoteCall,
			check: func(t *testing.T, m *Machine) {
				if len(m.Output) != 1 || m.Output[0] != 42 {
					t.Fatalf("output = %v, want [42]", m.Output)
				}
			},
		},
		{
			// A real quiesce: the first allocation reports gcNeeded, the
			// machine parks and collects, then retries.
			name: "gc/alloc-quiesce",
			img: func() *Image {
				b := isa.NewBuilder()
				b.Li(isa.T0, 3)
				b.Emit(isa.Instr{Op: isa.ALLOC, Rd: isa.T1, Rs: isa.T0, Imm: 0})
				b.Emit(isa.Instr{Op: isa.IOPUT, Rs: isa.T1})
				b.Emit(isa.Instr{Op: isa.HALT})
				return image(&Method{Name: "main", Code: b.Finish(), FrameWords: 4})
			},
			rt:     func() Runtime { return &gcOnceRuntime{stubRuntime: newStubRuntime()} },
			reason: DemoteGC,
			check: func(t *testing.T, m *Machine) {
				if m.GCRuns != 1 {
					t.Fatalf("GCRuns = %d, want 1", m.GCRuns)
				}
			},
		},
		{
			// DIV by zero with a catch handler: the trapping instruction
			// must divert before any side effect and run the interpreter's
			// full disposition path.
			name: "trap/div-zero-caught",
			img: func() *Image {
				b := isa.NewBuilder()
				b.Li(isa.T0, 5)
				b.Li(isa.T1, 0)
				b.Op3(isa.DIV, isa.T2, isa.T0, isa.T1)
				b.Emit(isa.Instr{Op: isa.HALT}) // skipped
				b.Label("handler")
				b.Li(isa.T3, 77)
				b.Emit(isa.Instr{Op: isa.IOPUT, Rs: isa.T3})
				b.Emit(isa.Instr{Op: isa.HALT})
				return image(&Method{Name: "main", Code: b.Finish(), FrameWords: 4,
					Handlers: []Handler{{Start: 0, End: 4, Target: 4, Kind: isa.ExArithmetic}}})
			},
			reason: DemoteTrap,
			check: func(t *testing.T, m *Machine) {
				if len(m.Output) != 1 || m.Output[0] != 77 {
					t.Fatalf("handler output = %v, want [77]", m.Output)
				}
			},
		},
		{
			// A store far beyond the memory: the data fault must carry the
			// interpreter's exact error, cycle count included.
			name: "fault/wild-store",
			img: func() *Image {
				b := isa.NewBuilder()
				b.Li(isa.T0, 1<<30)
				b.Li(isa.T1, 7)
				b.Sw(isa.T1, isa.T0, 0)
				b.Emit(isa.Instr{Op: isa.HALT})
				return image(&Method{Name: "main", Code: b.Finish(), FrameWords: 4})
			},
			reason:  DemoteFault,
			wantErr: true,
		},
		{
			// A budget small enough to land inside a block's worst-case
			// span: the engine must single-step so the watchdog fires at
			// the interpreter's exact cycle.
			name: "budget/watchdog",
			img: func() *Image {
				b := isa.NewBuilder()
				b.Li(isa.T0, 0)
				b.Label("spin")
				b.OpImm(isa.ADDI, isa.T0, isa.T0, 1)
				b.Jmp("spin")
				return image(&Method{Name: "main", Code: b.Finish(), FrameWords: 4})
			},
			maxCycles: 10_001,
			reason:    DemoteBudget,
			wantErr:   true,
		},
		{
			// A live (never-fired) cancellable context forces a Done poll
			// every CancelCheckStride cycles; blocks near the poll edge
			// must single-step so the poll lands at the interpreter's
			// cycle.
			name: "cancel/poll-stride",
			img: func() *Image {
				b := isa.NewBuilder()
				b.Li(isa.T0, 0)
				b.Li(isa.T2, 50_000) // crosses several stride checks
				b.Label("loop")
				// The memory ops give the block a worst-case span of
				// ~100 cycles, so block boundaries land inside the
				// poll-edge guard window on every stride crossing.
				b.Sw(isa.T0, isa.FP, 2)
				b.Lw(isa.T1, isa.FP, 2)
				b.OpImm(isa.ADDI, isa.T0, isa.T0, 1)
				b.Br(isa.BLT, isa.T0, isa.T2, "loop")
				b.Emit(isa.Instr{Op: isa.IOPUT, Rs: isa.T0})
				b.Emit(isa.Instr{Op: isa.HALT})
				return image(&Method{Name: "main", Code: b.Finish(), FrameWords: 8})
			},
			opts: func() Options {
				ctx, cancel := context.WithCancel(context.Background())
				t.Cleanup(cancel)
				o := DefaultOptions()
				o.Ctx = ctx
				return o
			},
			reason: DemoteCancel,
			check: func(t *testing.T, m *Machine) {
				if len(m.Output) != 1 || m.Output[0] != 50_000 {
					t.Fatalf("output = %v, want [50000]", m.Output)
				}
			},
		},
		{
			name: "io/output",
			img: func() *Image {
				b := isa.NewBuilder()
				b.Li(isa.T0, 9)
				b.Emit(isa.Instr{Op: isa.IOPUT, Rs: isa.T0})
				b.Emit(isa.Instr{Op: isa.HALT})
				return image(&Method{Name: "main", Code: b.Finish(), FrameWords: 4})
			},
			reason: DemoteIO,
		},
		{
			name: "runtime/monitor",
			img: func() *Image {
				b := isa.NewBuilder()
				b.Li(isa.T0, int64(HeapBase)+64)
				b.Emit(isa.Instr{Op: isa.MONENTER, Rs: isa.T0})
				b.Emit(isa.Instr{Op: isa.MONEXIT, Rs: isa.T0})
				b.Emit(isa.Instr{Op: isa.HALT})
				return image(&Method{Name: "main", Code: b.Finish(), FrameWords: 4})
			},
			reason: DemoteRuntime,
		},
		{
			// Code that falls off the end of the method: the interpreter
			// owns the bad-program failure path.
			name: "badpc/run-off-end",
			img: func() *Image {
				b := isa.NewBuilder()
				b.Li(isa.T0, 1)
				return image(&Method{Name: "main", Code: b.Finish(), FrameWords: 4})
			},
			reason:  DemoteBadPC,
			wantErr: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions()
			if tc.opts != nil {
				opts = tc.opts()
			}
			maxC := tc.maxCycles
			if maxC == 0 {
				maxC = 50_000_000
			}
			img := tc.img()
			on := NewMachine(img, runtimeOrStub(tc.rt), opts)
			errOn := on.Run(maxC)
			if tc.wantErr != (errOn != nil) {
				t.Fatalf("tier-on err = %v, wantErr=%v", errOn, tc.wantErr)
			}
			if on.Tier.Demote[tc.reason] == 0 {
				t.Errorf("Demote[%s] = 0, want > 0 (stats: %+v)", tc.reason, on.Tier)
			}
			// Full equivalence run (fresh machines, both tiers).
			m := runTiered(t, tc.img(), opts, tc.rt, maxC)
			if tc.check != nil {
				tc.check(t, m)
			}
		})
	}
}

func runtimeOrStub(rt func() Runtime) Runtime {
	if rt == nil {
		return newStubRuntime()
	}
	return rt()
}

// TestTier2SwitchMarkersNeverFuse pins the static guarantee behind the
// demotion matrix's spec row: the multilevel switch-in/switch-out markers
// (and the other STL ops) are boundary blocks, never members of a fused
// block, so every speculation transition executes in the interpreter.
func TestTier2SwitchMarkersNeverFuse(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.T0, 1)
	b.Emit(isa.Instr{Op: isa.STLSWSTART, Imm: 1})
	b.OpImm(isa.ADDI, isa.T0, isa.T0, 1)
	b.Emit(isa.Instr{Op: isa.STLSWEND})
	b.Emit(isa.Instr{Op: isa.HALT})
	img := image(&Method{Name: "main", Code: b.Finish(), FrameWords: 4})

	layout := BlockLayout(img, 0)
	byPC := map[int]BlockInfo{}
	for _, bi := range layout {
		byPC[bi.EntryPC] = bi
	}
	for _, pc := range []int{1, 3} { // STLSWSTART, STLSWEND
		bi, ok := byPC[pc]
		if !ok {
			t.Fatalf("pc %d: absorbed into another block: %+v", pc, layout)
		}
		if bi.Boundary != "spec" {
			t.Errorf("pc %d: boundary = %q, want \"spec\"", pc, bi.Boundary)
		}
	}
	if byPC[4].Boundary != "runtime" { // HALT
		t.Errorf("HALT boundary = %q, want \"runtime\"", byPC[4].Boundary)
	}
}

// TestTier2DispatchZeroAlloc proves steady-state tier-2 dispatch allocates
// nothing: growing a loop by 300k extra instructions must not change the
// per-run allocation count. (Machine construction allocates identically in
// both configurations and cancels out of the comparison.)
func TestTier2DispatchZeroAlloc(t *testing.T) {
	build := func(n int64) *Image {
		b := isa.NewBuilder()
		b.Li(isa.T0, 0)
		b.Li(isa.T2, n)
		b.Label("loop")
		b.Sw(isa.T0, isa.FP, 2) // fused mem ops stay on the zero-alloc path
		b.Lw(isa.T1, isa.FP, 2)
		b.Op3(isa.ADD, isa.T1, isa.T1, isa.T0)
		b.OpImm(isa.ADDI, isa.T0, isa.T0, 1)
		b.Br(isa.BLT, isa.T0, isa.T2, "loop")
		b.Emit(isa.Instr{Op: isa.HALT})
		return image(&Method{Name: "main", Code: b.Finish(), FrameWords: 8})
	}
	measure := func(n int64) float64 {
		img := build(n)
		return testing.AllocsPerRun(3, func() {
			m := NewMachine(img, newStubRuntime(), DefaultOptions())
			if err := m.Run(50_000_000); err != nil {
				t.Fatal(err)
			}
			if m.t2 == nil || m.Tier.Promotions == 0 {
				t.Fatal("tier-2 did not engage")
			}
			m.Release()
		})
	}
	small, big := measure(1_000), measure(61_000)
	// 60k extra iterations × 5 instructions each; allow a couple of stray
	// allocations (GC emptying the tier-2 compile pool mid-run).
	if big > small+3 {
		t.Fatalf("dispatch allocates: %.0f allocs at 1k iterations vs %.0f at 61k", small, big)
	}
}
