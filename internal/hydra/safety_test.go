package hydra

import (
	"errors"
	"testing"

	"jrpm/internal/faultinject"
	"jrpm/internal/isa"
	"jrpm/internal/mem"
	"jrpm/internal/tls"
)

// --- typed errors ---------------------------------------------------------

func TestOutOfRangeStoreFailsWithMemFault(t *testing.T) {
	b := isa.NewBuilder()
	b.Li(isa.T0, 1<<30) // far beyond MemWords
	b.Li(isa.T1, 7)
	b.Sw(isa.T1, isa.T0, 0)
	b.Emit(isa.Instr{Op: isa.HALT})
	img := image(&Method{Name: "main", Code: b.Finish(), FrameWords: 4})
	m := NewMachine(img, newStubRuntime(), DefaultOptions())
	err := m.Run(1_000_000)
	if err == nil {
		t.Fatal("wild store should fail the run")
	}
	var f *MemFault
	if !errors.As(err, &f) {
		t.Fatalf("error %v is not a *MemFault", err)
	}
	if f.Addr != 1<<30 || !f.Write || f.CPU != 0 || f.Cycle <= 0 {
		t.Fatalf("fault context = %+v", f)
	}
	if !errors.Is(err, mem.ErrOutOfRange) {
		t.Fatalf("MemFault should unwrap to mem.ErrOutOfRange, got %v", err)
	}
}

func TestSpeculativeOutOfRangeStoreFailsWithMemFault(t *testing.T) {
	// Every iteration stores out of range; whichever thread is (or becomes)
	// the head surfaces the fault as a typed architectural error.
	img := buildParallelSTL(16, 1<<30, 4)
	m := NewMachine(img, newStubRuntime(), DefaultOptions())
	err := m.Run(5_000_000)
	var f *MemFault
	if !errors.As(err, &f) {
		t.Fatalf("speculative wild store: error %v is not a *MemFault", err)
	}
	if !f.Write || f.Addr < 1<<30 {
		t.Fatalf("fault context = %+v", f)
	}
}

func TestCycleBudgetTypedError(t *testing.T) {
	b := isa.NewBuilder()
	b.Label("spin")
	b.Jmp("spin")
	img := image(&Method{Name: "main", Code: b.Finish(), FrameWords: 2})
	m := NewMachine(img, newStubRuntime(), DefaultOptions())
	if err := m.Run(10_000); !errors.Is(err, ErrCycleBudgetExceeded) {
		t.Fatalf("err = %v, want ErrCycleBudgetExceeded", err)
	}
}

func TestBadProgramTypedError(t *testing.T) {
	b := isa.NewBuilder()
	b.Emit(isa.Instr{Op: isa.MFC2, Rd: isa.T0, Imm: 99}) // unknown cp2 register
	b.Emit(isa.Instr{Op: isa.HALT})
	img := image(&Method{Name: "main", Code: b.Finish(), FrameWords: 2})
	m := NewMachine(img, newStubRuntime(), DefaultOptions())
	if err := m.Run(1_000_000); !errors.Is(err, ErrBadProgram) {
		t.Fatalf("err = %v, want ErrBadProgram", err)
	}
}

// panickyRuntime simulates a runtime bug: Alloc panics with a plain value.
type panickyRuntime struct{ stubRuntime }

func (p *panickyRuntime) Alloc(m *Machine, cpu int, classID int64) (int64, bool) {
	panic("runtime bug")
}

func TestRunRecoversRuntimePanicAsInternalError(t *testing.T) {
	b := isa.NewBuilder()
	b.Emit(isa.Instr{Op: isa.ALLOC, Rd: isa.T0, Imm: 3})
	b.Emit(isa.Instr{Op: isa.HALT})
	img := image(&Method{Name: "main", Code: b.Finish(), FrameWords: 2})
	m := NewMachine(img, &panickyRuntime{stubRuntime{next: int64(HeapBase)}}, DefaultOptions())
	err := m.Run(1_000_000)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
}

// --- fault injection ------------------------------------------------------

func faultOpts(plan faultinject.Plan) Options {
	o := DefaultOptions()
	o.Faults = &plan
	return o
}

func TestSpuriousRAWFaultsKeepLoopCorrect(t *testing.T) {
	const n, base = 64, 100000
	img := buildParallelSTL(n, base, 4)
	m := NewMachine(img, newStubRuntime(), faultOpts(faultinject.Plan{Seed: 11, RAW: 0.02}))
	if err := m.Run(50_000_000); err != nil {
		t.Fatalf("run under RAW faults: %v", err)
	}
	for i := int64(0); i < n; i++ {
		if got := m.Mem.Read(mem.Addr(base + i)); got != i*i {
			t.Fatalf("arr[%d] = %d, want %d", i, got, i*i)
		}
	}
	if m.TLS.Violations == 0 {
		t.Error("injected RAW faults produced no violations")
	}
	if m.Injector().Fired()["raw"] == 0 {
		t.Error("raw channel never fired")
	}
}

func TestOverflowAndBusFaultsKeepLoopCorrect(t *testing.T) {
	const n, base = 64, 100000
	img := buildParallelSTL(n, base, 4)
	plan := faultinject.Plan{Seed: 5, Overflow: 0.2, Bus: 0.5, BusDelay: 6}
	m := NewMachine(img, newStubRuntime(), faultOpts(plan))
	if err := m.Run(50_000_000); err != nil {
		t.Fatalf("run under overflow/bus faults: %v", err)
	}
	for i := int64(0); i < n; i++ {
		if got := m.Mem.Read(mem.Addr(base + i)); got != i*i {
			t.Fatalf("arr[%d] = %d, want %d", i, got, i*i)
		}
	}
	if m.TLS.Overflows == 0 {
		t.Error("injected overflow pressure produced no overflow episodes")
	}
	base4 := run(t, buildParallelSTL(n, base, 4), DefaultOptions())
	if m.Clock <= base4.Clock {
		t.Errorf("fault run (%d cycles) not slower than clean run (%d cycles)",
			m.Clock, base4.Clock)
	}
}

func TestHeapFaultForcesGCAndCompletes(t *testing.T) {
	b := isa.NewBuilder()
	b.Emit(isa.Instr{Op: isa.ALLOC, Rd: isa.T0, Imm: 3})
	b.Lw(isa.T1, isa.T0, 0)
	b.Emit(isa.Instr{Op: isa.IOPUT, Rs: isa.T1})
	b.Emit(isa.Instr{Op: isa.HALT})
	img := image(&Method{Name: "main", Code: b.Finish(), FrameWords: 2})
	m := NewMachine(img, newStubRuntime(), faultOpts(faultinject.Plan{Seed: 1, Heap: 1}))
	if err := m.Run(1_000_000); err != nil {
		t.Fatalf("run under heap faults: %v", err)
	}
	if len(m.Output) != 1 || m.Output[0] != 3 {
		t.Fatalf("output = %v, want [3]", m.Output)
	}
	if m.GCRuns == 0 {
		t.Error("injected heap exhaustion never forced a GC")
	}
}

// TestZeroFaultPlanIsCycleIdentical: installing a zero plan must not perturb
// timing at all — the acceptance criterion that lets benchmarks run with the
// flag plumbing always present.
func TestZeroFaultPlanIsCycleIdentical(t *testing.T) {
	clean := run(t, buildParallelSTL(64, 100000, 4), DefaultOptions())
	zeroed := run(t, buildParallelSTL(64, 100000, 4), faultOpts(faultinject.Plan{Seed: 99}))
	if clean.Clock != zeroed.Clock {
		t.Fatalf("zero plan changed cycles: %d vs %d", clean.Clock, zeroed.Clock)
	}
	if zeroed.Injector() != nil {
		t.Fatal("zero plan should install a nil injector")
	}
}

// TestFaultRunsAreDeterministic: the same plan twice gives identical clocks
// and identical fault counts.
func TestFaultRunsAreDeterministic(t *testing.T) {
	plan := faultinject.Plan{Seed: 21, RAW: 0.01, Overflow: 0.05, Bus: 0.2, BusDelay: 4}
	a := run(t, buildParallelSTL(64, 100000, 4), faultOpts(plan))
	b := run(t, buildParallelSTL(64, 100000, 4), faultOpts(plan))
	if a.Clock != b.Clock {
		t.Fatalf("clocks diverged: %d vs %d", a.Clock, b.Clock)
	}
	if a.Injector().FiredTotal() != b.Injector().FiredTotal() {
		t.Fatalf("fault counts diverged: %d vs %d",
			a.Injector().FiredTotal(), b.Injector().FiredTotal())
	}
}

// --- violation-storm guard and backstop -----------------------------------

func TestStormBackstopTripsOnThrashingLoop(t *testing.T) {
	img := buildSerializedSTL(40)
	opts := DefaultOptions()
	opts.StormLimit = 1 // any restart burst between commits trips it
	m := NewMachine(img, newStubRuntime(), opts)
	if err := m.Run(50_000_000); !errors.Is(err, ErrSpecViolationStorm) {
		t.Fatalf("err = %v, want ErrSpecViolationStorm", err)
	}
}

// TestGuardDecertifiesThrashingSTLAndRunCompletes is the acceptance test for
// the safety net: a pathologically serialized loop is decertified by the
// guard mid-run, the machine demotes to solo (sequential) execution, and the
// program still produces the sequential answer well inside the cycle budget.
func TestGuardDecertifiesThrashingSTLAndRunCompletes(t *testing.T) {
	const n = 120
	img := buildSerializedSTL(n)
	opts := DefaultOptions()
	opts.Guard = &tls.GuardConfig{
		Window:            8,
		BadViolationRatio: 0.5,
		BadOverflowRatio:  1.1, // overflow channel irrelevant here
		Decertify:         2,
		Backoff:           1 << 30, // never re-probe inside this test
		MaxBackoff:        1 << 30,
	}
	m := NewMachine(img, newStubRuntime(), opts)
	if err := m.Run(10_000_000); err != nil {
		t.Fatalf("guarded run failed: %v", err)
	}
	if got := m.Mem.Read(200000); got != n {
		t.Fatalf("counter = %d, want %d (solo demotion corrupted state)", got, n)
	}
	dec := m.Guard.DecertifiedLoops()
	if len(dec) != 1 {
		t.Fatalf("decertified loops = %v, want exactly one", dec)
	}
	st := m.Guard.Stats()[dec[0]]
	if st.Decerts == 0 {
		t.Fatalf("guard stats = %+v, want a decertification", st)
	}
	if m.TLS.Solo() {
		t.Error("solo mode should clear at STL shutdown")
	}

	// The guarded run must beat the unguarded thrashing run.
	un := run(t, buildSerializedSTL(n), DefaultOptions())
	if m.TLS.Violations >= un.TLS.Violations {
		t.Errorf("guard did not cut violations: %d vs %d unguarded",
			m.TLS.Violations, un.TLS.Violations)
	}
}

// TestGuardLeavesHealthyLoopAlone: an independent loop under the guard runs
// exactly as fast as without it and is never decertified.
func TestGuardLeavesHealthyLoopAlone(t *testing.T) {
	cfg := tls.DefaultGuardConfig()
	opts := DefaultOptions()
	opts.Guard = &cfg
	guarded := run(t, buildParallelSTL(64, 100000, 4), opts)
	clean := run(t, buildParallelSTL(64, 100000, 4), DefaultOptions())
	if guarded.Clock != clean.Clock {
		t.Errorf("guard perturbed a healthy loop: %d vs %d cycles",
			guarded.Clock, clean.Clock)
	}
	if dec := guarded.Guard.DecertifiedLoops(); len(dec) != 0 {
		t.Errorf("healthy loop decertified: %v", dec)
	}
}
