// Safepoint snapshots of the whole machine.
//
// A safepoint is the serial fast-loop predicate: exactly one CPU in
// stateRunning and thread speculation inactive. At that point no STL is
// mid-flight (curSTL/outerSTL are nil, every tls thread is between
// attempts), so the machine's observable state is exactly: the clock, the
// per-CPU architectural contexts, the dirty spans of simulated memory, the
// cache tag arrays, the tls unit's cumulative counters, the guard's
// per-loop decision state, and the tier-2 statistics. Snapshot captures all
// of it; Restore writes it into a freshly built machine for the same image,
// and the resumed Run is bit-identical to the uninterrupted one — same
// final clock, same violation counts, same output.
//
// Snapshots are pure observation: taking one never advances the clock or
// touches a counter. The checkpoint latch in the two fast loops costs one
// nil compare when disabled (the same discipline as the recorder and
// ledger hooks).
package hydra

import (
	"fmt"
	"sort"
	"sync/atomic"

	"jrpm/internal/isa"
	"jrpm/internal/mem"
	"jrpm/internal/tls"
)

// ErrSnapshotUnsupported marks a machine whose attached observers preclude
// snapshotting (tracer, flight recorder, fault injector, or ledger — all
// carry unbounded mid-run state that is not worth serializing; runs that
// need them re-execute from the start instead).
var ErrSnapshotUnsupported = fmt.Errorf("hydra: snapshot unsupported with tracer/recorder/injector/ledger attached")

// ErrNotSafepoint marks a snapshot or restore attempted outside a
// safepoint (speculation active, an STL open, or the machine halted).
var ErrNotSafepoint = fmt.Errorf("hydra: not at a safepoint")

// FrameSnapshot is one call-stack entry.
type FrameSnapshot struct {
	RetMethod int
	RetPC     int
	SavedFP   int64
	SavedSP   int64
}

// CPUSnapshot is one core's complete context. The deferred-fault pointer is
// not carried: it is only read in stateWaitException, which cannot be any
// CPU's state at a safepoint.
type CPUSnapshot struct {
	Regs     [isa.NumRegs]int64
	PC       int
	MethodID int

	Frames  []FrameSnapshot
	State   int
	ReadyAt int64

	SnapDepth int
	SnapSP    int64
	SnapFP    int64

	PendingExKind   int64
	PendingExRef    int64
	PendingIO       int64
	OverflowPending bool
	GCAttempts      int
	Extra           int64
}

// STLCount is one loop's overflow-stall count (the OverflowBySTL map,
// sorted by loop id for canonical encoding).
type STLCount struct {
	LoopID int64
	Count  int64
}

// TierBlockSnapshot records one compiled block's identity — its entry pc —
// plus its memoized trace-link targets, so a restored engine re-links
// exactly the successors the original had (Linked counts are wire-carried
// through TierStats and must not drift).
type TierBlockSnapshot struct {
	Entry int32
	Succ0 int32 // linked successor entry pc, -1 when unlinked
	Succ1 int32
}

// TierMethodSnapshot is one method's live block-cache contents.
type TierMethodSnapshot struct {
	Method int
	Blocks []TierBlockSnapshot // sorted by entry pc
}

// TierCacheSnapshot is the tier-2 engine's warm state. Blocks are
// recompiled (not serialized) at restore: compilation is deterministic from
// the image, so only the set of cached entry pcs and the link topology
// travel. Resume marks a snapshot taken inside runTier2; the restored run
// re-enters the engine without recounting the promotion, with LastEntry as
// the trace-link predecessor (-1 for none).
type TierCacheSnapshot struct {
	Methods   []TierMethodSnapshot
	Resume    bool
	LastEntry int32
}

// MachineSnapshot is the complete safepoint state of a machine.
type MachineSnapshot struct {
	ImageFP uint64 // fingerprint of the image this state belongs to
	NCPU    int

	Clock        int64
	Master       int
	Output       []int64
	GCCycles     int64
	Instructions int64
	GCRuns       int64

	OverflowBySTL []STLCount
	StormCount    int64
	LastHoisted   int64

	// HadCtx records whether the run was cancellable; the poll schedule
	// (nextCtxCheck) perturbs tier-2 demotion decisions, so a resumed run
	// must agree on cancellability with the original.
	HadCtx       bool
	NextCtxCheck int64

	CPUs []CPUSnapshot

	Mem    mem.State
	Caches mem.CacheState
	TLS    tls.UnitState

	HasGuard bool
	Guard    []tls.GuardLoopState

	Tier TierStats
	T2   *TierCacheSnapshot // nil when the engine is disabled
}

// ImageFingerprint hashes the image's executable content (FNV-1a over every
// instruction word, frame geometry, entry point and statics count), so a
// snapshot refuses to restore against a different program.
func ImageFingerprint(img *Image) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(len(img.Methods)))
	mix(uint64(img.Main))
	mix(uint64(img.Statics))
	for _, meth := range img.Methods {
		mix(uint64(meth.FrameWords))
		mix(uint64(len(meth.Code)))
		for i := range meth.Code {
			in := &meth.Code[i]
			mix(uint64(in.Op)<<32 | uint64(in.Rd)<<16 | uint64(in.Rs)<<8 | uint64(in.Rt))
			mix(uint64(in.Imm))
			mix(uint64(in.Imm2))
			mix(uint64(in.Target))
		}
	}
	mix(uint64(len(img.STLs)))
	return h
}

// Checkpointer requests asynchronous safepoint snapshots from a running
// machine. Request may be called from any goroutine; the machine polls the
// armed flag at safepoint edges (the same stride as cancellation polls) and,
// when armed, captures a snapshot on its own goroutine and hands it to Sink.
type Checkpointer struct {
	armed atomic.Bool

	// Sink receives each captured snapshot, called on the run goroutine at
	// the safepoint. It must not retain the machine; the snapshot itself is
	// fully detached. Set before the run starts.
	Sink func(*MachineSnapshot)

	// Stride is the minimum simulated-cycle distance between armed-flag
	// polls (0 = CancelCheckStride). Smaller strides bound checkpoint
	// latency tighter at the cost of more safepoint polls; tests use tiny
	// strides to exercise safepoints in short programs.
	Stride int64
}

// Request arms the checkpointer: the next safepoint edge captures one
// snapshot. Requests collapse (arming an armed checkpointer is a no-op).
func (cp *Checkpointer) Request() { cp.armed.Store(true) }

// checkpointNow fires the safepoint latch: reschedule the next poll, and if
// a snapshot was requested, capture and deliver it. Called only from the
// serial fast loops, where the safepoint predicate already holds.
func (m *Machine) checkpointNow(inTier2 bool, last *t2block) {
	m.ckptNext = m.Clock + m.ckptStride
	if !m.ckpt.armed.CompareAndSwap(true, false) {
		return
	}
	s, err := m.snapshotAt(inTier2, last)
	if err != nil {
		// Unsupported configuration (observer attached): disarm silently;
		// callers gate checkpointing off for such runs.
		return
	}
	if m.ckpt.Sink != nil {
		m.ckpt.Sink(s)
	}
}

// Snapshot captures the machine's state at a safepoint. It errors when the
// machine is not at one (speculation active, an STL open, halted or failed)
// or when an attached observer precludes snapshotting.
func (m *Machine) Snapshot() (*MachineSnapshot, error) {
	return m.snapshotAt(false, nil)
}

func (m *Machine) snapshotAt(inTier2 bool, last *t2block) (*MachineSnapshot, error) {
	if m.Tracer != nil || m.rec != nil || m.inj != nil || m.led != nil {
		return nil, ErrSnapshotUnsupported
	}
	if m.halted || m.err != nil {
		return nil, fmt.Errorf("%w: machine halted (err: %v)", ErrNotSafepoint, m.err)
	}
	if m.curSTL != nil || m.outerSTL != nil {
		return nil, fmt.Errorf("%w: an STL is open", ErrNotSafepoint)
	}
	unit, err := m.TLS.CaptureState()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotSafepoint, err)
	}
	s := &MachineSnapshot{
		ImageFP:      ImageFingerprint(m.Image),
		NCPU:         len(m.CPUs),
		Clock:        m.Clock,
		Master:       m.Master,
		Output:       append([]int64(nil), m.Output...),
		GCCycles:     m.GCCycles,
		Instructions: m.Instructions,
		GCRuns:       m.GCRuns,
		StormCount:   m.stormCount,
		LastHoisted:  m.lastHoisted,
		HadCtx:       m.ctxDone != nil,
		NextCtxCheck: m.nextCtxCheck,
		Mem:          m.Mem.CaptureState(),
		Caches:       m.Caches.CaptureState(),
		TLS:          unit,
		HasGuard:     m.Guard != nil,
		Guard:        m.Guard.CaptureState(),
		Tier:         m.Tier,
	}
	for id, n := range m.OverflowBySTL {
		s.OverflowBySTL = append(s.OverflowBySTL, STLCount{LoopID: id, Count: n})
	}
	sort.Slice(s.OverflowBySTL, func(i, j int) bool { return s.OverflowBySTL[i].LoopID < s.OverflowBySTL[j].LoopID })
	for _, c := range m.CPUs {
		cs := CPUSnapshot{
			Regs:            c.Regs,
			PC:              c.PC,
			MethodID:        c.MethodID,
			State:           int(c.state),
			ReadyAt:         c.readyAt,
			SnapDepth:       c.snap.depth,
			SnapSP:          c.snap.sp,
			SnapFP:          c.snap.fp,
			PendingExKind:   c.pendingExKind,
			PendingExRef:    c.pendingExRef,
			PendingIO:       c.pendingIO,
			OverflowPending: c.overflowPending,
			GCAttempts:      c.gcAttempts,
			Extra:           c.extra,
		}
		for _, f := range c.frames {
			cs.Frames = append(cs.Frames, FrameSnapshot{
				RetMethod: f.retMethod, RetPC: f.retPC, SavedFP: f.savedFP, SavedSP: f.savedSP,
			})
		}
		s.CPUs = append(s.CPUs, cs)
	}
	if m.t2 != nil {
		s.T2 = m.captureTier2(inTier2, last)
	}
	return s, nil
}

// captureTier2 records the live block-cache topology: per method, the entry
// pcs of every cached block and their trace links.
func (m *Machine) captureTier2(inTier2 bool, last *t2block) *TierCacheSnapshot {
	t := m.t2
	ts := &TierCacheSnapshot{Resume: inTier2, LastEntry: -1}
	if last != nil {
		ts.LastEntry = last.entry
	}
	for mid := range t.methods {
		tm := &t.methods[mid]
		if tm.gen != t.gen {
			continue
		}
		var ms TierMethodSnapshot
		ms.Method = mid
		for pc, b := range tm.blocks {
			if b == nil {
				continue
			}
			ms.Blocks = append(ms.Blocks, TierBlockSnapshot{
				Entry: int32(pc), Succ0: b.succPC[0], Succ1: b.succPC[1],
			})
		}
		if len(ms.Blocks) > 0 {
			ts.Methods = append(ts.Methods, ms)
		}
	}
	return ts
}

// Restore writes a snapshot into a freshly built, never-run machine for the
// same image and configuration. The machine must not have Booted (Restore
// replaces every CPU context, and Run skips Boot when CPU 0 is already
// runnable). After Restore, Run continues the original execution
// bit-identically.
func (m *Machine) Restore(s *MachineSnapshot) error {
	if m.Tracer != nil || m.rec != nil || m.inj != nil || m.led != nil {
		return ErrSnapshotUnsupported
	}
	if m.halted || m.err != nil {
		return fmt.Errorf("%w: restore into a halted machine", ErrNotSafepoint)
	}
	if fp := ImageFingerprint(m.Image); fp != s.ImageFP {
		return fmt.Errorf("hydra: restore: image fingerprint mismatch: snapshot %016x, machine %016x", s.ImageFP, fp)
	}
	if len(m.CPUs) != s.NCPU {
		return fmt.Errorf("hydra: restore: NCPU mismatch: snapshot %d, machine %d", s.NCPU, len(m.CPUs))
	}
	if (m.ctxDone != nil) != s.HadCtx {
		return fmt.Errorf("hydra: restore: cancellability mismatch: snapshot ctx=%v, machine ctx=%v (the poll schedule steers tier-2 demotions)", s.HadCtx, m.ctxDone != nil)
	}
	if (m.Guard != nil) != s.HasGuard {
		return fmt.Errorf("hydra: restore: guard mismatch: snapshot guard=%v, machine guard=%v", s.HasGuard, m.Guard != nil)
	}
	if (m.t2 != nil) != (s.T2 != nil) {
		return fmt.Errorf("hydra: restore: tier-2 mismatch: snapshot t2=%v, machine t2=%v", s.T2 != nil, m.t2 != nil)
	}
	if err := m.Mem.RestoreState(s.Mem); err != nil {
		return fmt.Errorf("hydra: restore: %w", err)
	}
	if err := m.Caches.RestoreState(s.Caches); err != nil {
		return fmt.Errorf("hydra: restore: %w", err)
	}
	if err := m.TLS.RestoreState(s.TLS); err != nil {
		return fmt.Errorf("hydra: restore: %w", err)
	}
	if err := m.Guard.RestoreState(s.Guard); err != nil {
		return fmt.Errorf("hydra: restore: %w", err)
	}
	m.Clock = s.Clock
	m.Master = s.Master
	m.Output = append(m.Output[:0], s.Output...)
	m.GCCycles = s.GCCycles
	m.Instructions = s.Instructions
	m.GCRuns = s.GCRuns
	m.stormCount = s.StormCount
	m.lastHoisted = s.LastHoisted
	if m.ctxDone != nil {
		m.nextCtxCheck = s.NextCtxCheck
	}
	m.OverflowBySTL = make(map[int64]int64, len(s.OverflowBySTL))
	for _, e := range s.OverflowBySTL {
		m.OverflowBySTL[e.LoopID] = e.Count
	}
	for i, cs := range s.CPUs {
		c := m.CPUs[i]
		c.Regs = cs.Regs
		c.PC = cs.PC
		c.MethodID = cs.MethodID
		c.frames = c.frames[:0]
		for _, f := range cs.Frames {
			c.frames = append(c.frames, frame{
				retMethod: f.RetMethod, retPC: f.RetPC, savedFP: f.SavedFP, savedSP: f.SavedSP,
			})
		}
		c.state = cpuState(cs.State)
		c.readyAt = cs.ReadyAt
		c.snap = snapshot{depth: cs.SnapDepth, sp: cs.SnapSP, fp: cs.SnapFP}
		c.pendingExKind = cs.PendingExKind
		c.pendingExRef = cs.PendingExRef
		c.pendingFault = nil
		c.pendingIO = cs.PendingIO
		c.overflowPending = cs.OverflowPending
		c.gcAttempts = cs.GCAttempts
		c.extra = cs.Extra
	}
	m.Tier = s.Tier
	if s.T2 != nil {
		if err := m.restoreTier2(s.T2); err != nil {
			return err
		}
	}
	// If the new run checkpoints too, schedule its first poll one stride out
	// (the original's latch state is not observable and need not travel).
	if m.ckpt != nil {
		m.ckptNext = m.Clock + m.ckptStride
	}
	m.booted = true // Run must continue the restored contexts, never re-Boot
	return nil
}

// restoreTier2 recompiles the snapshot's cached blocks directly (bypassing
// lookup, so the restored Tier counters stay exactly the snapshot's) and
// re-links trace successors.
func (m *Machine) restoreTier2(ts *TierCacheSnapshot) error {
	t := m.t2
	for _, ms := range ts.Methods {
		mid := ms.Method
		if mid < 0 || mid >= len(m.Image.Methods) {
			return fmt.Errorf("hydra: restore: tier-2 snapshot references unknown method %d", mid)
		}
		if mid >= len(t.methods) {
			grown := make([]t2method, mid+1)
			copy(grown, t.methods)
			t.methods = grown
		}
		tm := &t.methods[mid]
		code := m.Image.Method(mid).Code
		tm.gen = t.gen
		if cap(tm.blocks) < len(code) {
			tm.blocks = make([]*t2block, len(code))
		} else {
			tm.blocks = tm.blocks[:len(code)]
			for i := range tm.blocks {
				tm.blocks[i] = nil
			}
		}
		for _, bs := range ms.Blocks {
			if bs.Entry < 0 || int(bs.Entry) >= len(code) {
				return fmt.Errorf("hydra: restore: tier-2 block entry %d out of range for method %d", bs.Entry, mid)
			}
			tm.blocks[bs.Entry] = t.compile(code, int(bs.Entry))
		}
		for _, bs := range ms.Blocks {
			b := tm.blocks[bs.Entry]
			for li, spc := range [2]int32{bs.Succ0, bs.Succ1} {
				if spc < 0 {
					continue
				}
				if int(spc) >= len(tm.blocks) || tm.blocks[spc] == nil {
					return fmt.Errorf("hydra: restore: tier-2 link %d->%d dangles in method %d", bs.Entry, spc, mid)
				}
				b.succPC[li] = spc
				b.succ[li] = tm.blocks[spc]
			}
		}
	}
	if ts.Resume {
		m.t2resume = true
		if ts.LastEntry >= 0 {
			// The predecessor block lives in the running CPU's method (trace
			// links never cross a CALL/RET, which always demote).
			var solo *CPU
			for _, c := range m.CPUs {
				if c.state == stateRunning {
					solo = c
					break
				}
			}
			if solo == nil {
				return fmt.Errorf("hydra: restore: tier-2 resume with no runnable CPU")
			}
			mid := solo.MethodID
			if mid >= len(t.methods) || t.methods[mid].gen != t.gen ||
				int(ts.LastEntry) >= len(t.methods[mid].blocks) || t.methods[mid].blocks[ts.LastEntry] == nil {
				return fmt.Errorf("hydra: restore: tier-2 resume block %d missing in method %d", ts.LastEntry, mid)
			}
			m.t2resumeLast = t.methods[mid].blocks[ts.LastEntry]
		}
	}
	return nil
}
