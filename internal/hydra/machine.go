package hydra

import (
	"context"
	"fmt"
	"math"

	"jrpm/internal/faultinject"
	"jrpm/internal/isa"
	"jrpm/internal/mem"
	"jrpm/internal/obs"
	"jrpm/internal/tls"
	"jrpm/internal/tracer"
)

// cpuState is the scheduling state of one core.
type cpuState int

const (
	stateIdle cpuState = iota
	stateRunning
	stateWaitEOI       // at STL_EOI, waiting to become head to commit
	stateWaitShutdown  // at STL_SHUTDOWN, waiting to become head
	stateWaitOverflow  // speculative buffer overflow, waiting to become head
	stateWaitException // speculative exception deferred until head (§5.1)
	stateWaitIO        // system call deferred until head
	stateWaitGC        // allocation failed; GC must run at head
	stateWaitSwitchIn  // multilevel switch into inner STL (§4.2.6)
	stateWaitSwitchOut // multilevel switch back to outer STL
	stateHalted
)

// frame is one call-stack entry (return linkage kept machine-side; frame
// data itself lives in simulated memory addressed off $fp).
type frame struct {
	retMethod int
	retPC     int
	savedFP   int64
	savedSP   int64
}

// snapshot is the context restored when a speculative thread restarts.
type snapshot struct {
	depth  int
	sp, fp int64
}

// CPU is one single-issue core.
type CPU struct {
	ID       int
	Regs     [isa.NumRegs]int64
	PC       int
	MethodID int

	frames  []frame
	state   cpuState
	readyAt int64
	snap    snapshot

	pendingExKind   int64
	pendingExRef    int64
	pendingFault    *MemFault // deferred speculative out-of-range access
	pendingIO       int64
	overflowPending bool
	gcAttempts      int // consecutive collections for the same allocation

	extra int64 // memory/runtime cycles accumulated by the current instruction
}

// exKindMemFault is the pendingExKind sentinel for a deferred out-of-range
// access: real isa exception kinds are non-negative.
const exKindMemFault = -1

// Options configures a Machine.
type Options struct {
	NCPU     int
	Handlers tls.HandlerCosts
	TLS      *tls.Config
	Cache    *mem.CacheConfig
	Profile  bool // attach the TEST tracer and honour annotations
	Tracer   *tracer.Config

	// Faults enables deterministic fault injection (nil = none). A zero
	// plan installs the hooks but never fires, leaving cycle counts
	// identical to a machine with no plan at all.
	Faults *faultinject.Plan

	// Guard enables the STL violation-storm guard (nil = disabled): a
	// thrashing STL is decertified after K bad windows and falls back to
	// sequential (solo) execution, re-probing with exponential backoff.
	Guard *tls.GuardConfig

	// StormLimit caps violations between two commits before the machine
	// fails with ErrSpecViolationStorm (0 = default 1<<20). It is the hard
	// backstop below the cycle budget when the guard is disabled.
	StormLimit int64

	// Recorder receives cycle-stamped speculation events (the flight
	// recorder). nil disables recording; the disabled path is one predicted
	// branch per site — no allocation, no timing change, bit-identical
	// cycle counts. Must be a nil interface to disable, not a typed nil.
	Recorder obs.Recorder

	// Ledger attaches the speculation doctor's per-loop cycle-conservation
	// ledger (nil disables). Like the recorder it is pure observation: one
	// predicted nil-check per hook site, no allocation, no timing change,
	// bit-identical cycle counts whether attached or not. Unlike the
	// recorder it does NOT demote the tier-2 block engine — the ledger's
	// charges mirror the same batched accounting the engine already feeds
	// the tls unit.
	Ledger *obs.Ledger

	// Tier2Off disables the tier-2 block engine, forcing every instruction
	// through the cycle-accurate interpreter. The engine changes host ns/op
	// only — cycles, traces, and outputs are bit-identical either way — so
	// the zero value (enabled) is right for everything except equivalence
	// testing and benchmarking the interpreter itself. The engine also
	// self-disables while a Recorder or fault Plan is attached, since both
	// observe or perturb per-instruction events.
	Tier2Off bool

	// Checkpoint, when non-nil, lets another goroutine request safepoint
	// snapshots from the running machine (see Checkpointer). Disabled the
	// latch costs one nil compare per safepoint edge; cycle counts are
	// bit-identical whether attached or not, armed or not.
	Checkpoint *Checkpointer

	// Ctx, when non-nil, bounds the run in wall-clock terms: Run polls
	// ctx.Done() once every CancelCheckStride simulated cycles (amortized
	// to a couple of integer compares per scheduler step, so cycle counts
	// stay bit-identical and the hot path stays allocation-free) and fails
	// with ErrCancelled wrapping the context's cause. nil means the run is
	// uninterruptible, as before.
	Ctx context.Context
}

// defaultStormLimit bounds restarts-without-commit; generous enough that
// no real decomposition approaches it.
const defaultStormLimit = 1 << 20

// CancelCheckStride is how many simulated cycles may elapse between polls
// of the run context's Done channel. At typical host simulation rates
// (tens of millions of simulated cycles per second) a 64Ki-cycle stride
// bounds cancellation latency well under 100 ms of wall clock while
// keeping the per-step cost to two integer compares.
const CancelCheckStride = 1 << 16

// DefaultOptions returns the paper's 4-CPU Hydra with new handlers.
func DefaultOptions() Options {
	return Options{NCPU: 4, Handlers: tls.NewHandlers}
}

// Machine is the simulated Hydra CMP.
type Machine struct {
	Image   *Image
	Mem     *mem.Memory
	Caches  *mem.CacheSim
	TLS     *tls.Unit
	Tracer  *tracer.Tracer
	Runtime Runtime
	CPUs    []*CPU

	Clock        int64
	Master       int
	Output       []int64
	GCCycles     int64
	Instructions int64
	GCRuns       int64
	// OverflowBySTL counts speculative buffer overflow stalls per loop
	// (keyed by cfg global loop id), the feedback signal for the adaptive
	// reprofiling the paper sketches in §6.2.
	OverflowBySTL map[int64]int64

	halted bool
	err    error
	booted bool // Boot ran or a snapshot was restored; Run must not re-Boot
	// heapLazy: the runtime implements HeapZeroer, so Release can return
	// the simulated memory with the heap span left stale.
	heapLazy bool

	inj        *faultinject.Injector
	Guard      *tls.Guard
	stormLimit int64
	stormCount int64 // violations since the last commit (storm backstop)

	rec obs.Recorder
	led *obs.Ledger
	// Configured latencies, cached so the recorder can classify a load's
	// memory level from its charged latency without touching CacheSim.
	latL2, latMem, latInter int64

	// Tier-2 block engine state: t2 is nil when the engine is disabled
	// (Options.Tier2Off, or a recorder/fault plan is attached). latMax is
	// the slowest configured memory latency, for worst-case block spans.
	// t2sub/t2cyc are the divert scratch registers (see runBlock). Tier
	// counts engine activity for metrics.
	t2     *tier2
	latMax int64
	t2sub  int32
	t2cyc  int64
	Tier   TierStats

	// Cancellation state: ctxDone is nil when no context is attached (the
	// hot-path check then short-circuits on one nil compare). nextCtxCheck
	// is the simulated cycle of the next Done poll.
	ctx          context.Context
	ctxDone      <-chan struct{}
	nextCtxCheck int64

	// Checkpoint latch: ckpt is nil when checkpointing is disabled (the
	// fast-loop check then short-circuits on one nil compare). ckptNext is
	// the simulated cycle of the next armed-flag poll. t2resume/t2resumeLast
	// carry a restored snapshot's tier-2 re-entry state into the first
	// runTier2 call (see Restore).
	ckpt         *Checkpointer
	ckptNext     int64
	ckptStride   int64
	t2resume     bool
	t2resumeLast *t2block

	curSTL        *STLDesc
	outerSTL      *STLDesc
	outerResume   int64
	stlFrameDepth int
	lastHoisted   int64 // last hoisted STL id, for repeat-entry savings
}

// NewMachine builds a machine for img with the given runtime services.
func NewMachine(img *Image, rt Runtime, opts Options) *Machine {
	if opts.NCPU == 0 {
		opts.NCPU = 4
	}
	if opts.Handlers == (tls.HandlerCosts{}) {
		opts.Handlers = tls.NewHandlers
	}
	cacheCfg := mem.DefaultCacheConfig(opts.NCPU)
	if opts.Cache != nil {
		cacheCfg = *opts.Cache
	}
	tlsCfg := tls.DefaultConfig(opts.NCPU)
	tlsCfg.Handlers = opts.Handlers
	if opts.TLS != nil {
		tlsCfg = *opts.TLS
		tlsCfg.NCPU = opts.NCPU
	}
	// A runtime that zeroes every allocated block lets the pooled memory
	// skip re-zeroing the heap span on release/reuse (the dominant memclr
	// cost of a pipeline run); everyone else gets the all-zero guarantee.
	simMem := mem.NewPooledMemory
	heapLazy := false
	if hz, ok := rt.(HeapZeroer); ok && hz.ZeroesHeap() {
		heapLazy = true
		simMem = func(size int, split mem.Addr) *mem.Memory {
			return mem.NewPooledMemoryStale(size, split, HeapBase)
		}
	}
	m := &Machine{
		Image:         img,
		Mem:           simMem(MemWords, StackRegionBase),
		Caches:        mem.NewCacheSim(cacheCfg),
		Runtime:       rt,
		OverflowBySTL: map[int64]int64{},
		rec:           opts.Recorder,
		heapLazy:      heapLazy,
		latL2:         cacheCfg.LatL2,
		latMem:        cacheCfg.LatMem,
		latInter:      cacheCfg.LatInter,
	}
	m.latMax = cacheCfg.LatL1
	for _, lat := range []int64{cacheCfg.LatL2, cacheCfg.LatMem, cacheCfg.LatInter} {
		if lat > m.latMax {
			m.latMax = lat
		}
	}
	if !opts.Tier2Off && opts.Recorder == nil && opts.Faults == nil {
		m.t2 = t2acquire()
	}
	m.TLS = tls.NewUnit(tlsCfg, m.Mem, m.Caches)
	if opts.Ledger != nil {
		m.led = opts.Ledger
		m.led.SetSymbolizer(m.symbolizeAddr)
		m.TLS.SetLedger(m.led)
	}
	if opts.Faults != nil {
		m.inj = faultinject.New(*opts.Faults)
	}
	m.TLS.SetInjector(m.inj)
	if opts.Guard != nil {
		m.Guard = tls.NewGuard(*opts.Guard)
	}
	m.stormLimit = opts.StormLimit
	if m.stormLimit <= 0 {
		m.stormLimit = defaultStormLimit
	}
	if opts.Ctx != nil {
		m.ctx = opts.Ctx
		m.ctxDone = opts.Ctx.Done() // nil for Background: no polling
		m.nextCtxCheck = CancelCheckStride
	}
	if opts.Checkpoint != nil {
		m.ckpt = opts.Checkpoint
		m.ckptStride = opts.Checkpoint.Stride
		if m.ckptStride <= 0 {
			m.ckptStride = CancelCheckStride
		}
		m.ckptNext = m.ckptStride
	}
	if opts.Profile {
		tcfg := tracer.DefaultConfig()
		if opts.Tracer != nil {
			tcfg = *opts.Tracer
		}
		tcfg.StoreBufferLines = tlsCfg.StoreBufferLines
		tcfg.LoadBufferLines = tlsCfg.LoadBufferLines
		tcfg.MemWords = MemWords
		m.Tracer = tracer.New(tcfg)
	}
	for i := 0; i < opts.NCPU; i++ {
		m.CPUs = append(m.CPUs, &CPU{ID: i, state: stateIdle})
	}
	return m
}

// Release returns the machine's pooled resources — the simulated memory and
// the tracer's flat timestamp tables — for reuse by the next machine. Results
// already extracted (cycle counts, outputs, tracer loop statistics) stay
// valid; the machine itself must not run or be read afterwards.
func (m *Machine) Release() {
	if m.Tracer != nil {
		m.Tracer.Release()
	}
	if m.Mem != nil {
		if m.heapLazy {
			m.Mem.ReleaseKeepStale(HeapBase)
		} else {
			m.Mem.Release()
		}
		m.Mem = nil
	}
	if m.t2 != nil {
		m.t2.release()
		m.t2 = nil
	}
}

// Boot prepares CPU 0 at the program entry point.
func (m *Machine) Boot() {
	m.booted = true
	main := m.Image.Method(m.Image.Main)
	c := m.CPUs[0]
	c.MethodID = m.Image.Main
	c.PC = 0
	c.Regs[isa.GP] = int64(GlobalBase)
	c.Regs[isa.SP] = int64(StackTop) - main.FrameWords
	c.Regs[isa.FP] = c.Regs[isa.SP]
	c.state = stateRunning
	m.Master = 0
}

// Err returns the terminal error, if any (uncaught exception, cycle budget).
func (m *Machine) Err() error { return m.err }

// pollCancel performs one Done poll and reschedules the next check. Callers
// gate on (ctxDone != nil && Clock >= nextCtxCheck) so the common path never
// reaches the select. Returns true when the run must stop.
func (m *Machine) pollCancel() bool {
	m.nextCtxCheck = m.Clock + CancelCheckStride
	select {
	case <-m.ctxDone:
		m.fail(fmt.Errorf("%w at cycle %d: %w", ErrCancelled, m.Clock, context.Cause(m.ctx)))
		return true
	default:
		return false
	}
}

// Injector returns the attached fault injector (nil when no plan is set).
func (m *Machine) Injector() *faultinject.Injector { return m.inj }

// Run executes until the program halts or maxCycles elapse. All abnormal
// terminations surface as typed errors (see errors.go); a panic escaping the
// simulator core is itself a bug, but the recover backstop converts it to
// ErrInternal rather than crash the embedding process.
func (m *Machine) Run(maxCycles int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(*mem.Fault); ok {
				m.fail(fmt.Errorf("%w: unguarded memory access: %v", ErrInternal, f))
			} else {
				m.fail(fmt.Errorf("%w: panic: %v", ErrInternal, r))
			}
			err = m.err
		}
	}()
	// After a snapshot restore the running CPU need not be CPU 0 (any core
	// can be master after an STL shutdown), so auto-boot keys on the
	// explicit flag, not on CPU 0's state.
	if !m.booted && !m.halted {
		m.Boot()
	}
	for !m.halted {
		next := int64(math.MaxInt64)
		active := 0
		var solo *CPU
		for _, c := range m.CPUs {
			if c.state == stateIdle || c.state == stateHalted {
				continue
			}
			active++
			solo = c
			if c.readyAt < next {
				next = c.readyAt
			}
		}
		if active == 0 {
			m.fail(fmt.Errorf("%w at cycle %d", ErrNoRunnableCPU, m.Clock))
			return m.err
		}
		if next > m.Clock {
			m.Clock = next
		}
		if m.Clock > maxCycles {
			m.fail(fmt.Errorf("%w: budget %d, clock %d", ErrCycleBudgetExceeded, maxCycles, m.Clock))
			return m.err
		}
		if m.ctxDone != nil && m.Clock >= m.nextCtxCheck && m.pollCancel() {
			return m.err
		}
		// Serial-phase fast loop: with a single runnable CPU and speculation
		// off, instructions dispatch back-to-back without rescanning the CPU
		// list each cycle. Anything that can wake a second CPU (STL startup)
		// flips TLS.Active and falls back to the general scheduler; clock
		// advance and budget semantics are identical to the outer loop.
		if active == 1 && solo.state == stateRunning && !m.TLS.Active() {
			if m.t2 != nil {
				// Tier-2 promotion: the block engine owns the serial phase
				// until something demotes it (see tier2.go). Budget and
				// cancellation failures halt the machine from inside.
				m.runTier2(solo, maxCycles)
				continue
			}
			c := solo
			for !m.halted && c.state == stateRunning && !m.TLS.Active() {
				if c.readyAt > m.Clock {
					m.Clock = c.readyAt
				}
				if m.Clock > maxCycles {
					m.fail(fmt.Errorf("%w: budget %d, clock %d", ErrCycleBudgetExceeded, maxCycles, m.Clock))
					return m.err
				}
				if m.ctxDone != nil && m.Clock >= m.nextCtxCheck && m.pollCancel() {
					return m.err
				}
				if m.ckpt != nil && m.Clock >= m.ckptNext {
					m.checkpointNow(false, nil)
				}
				m.exec(c)
			}
			continue
		}
		for _, c := range m.CPUs {
			if m.halted {
				break
			}
			if c.readyAt <= m.Clock {
				m.step(c)
			}
		}
	}
	return m.err
}

// step advances one CPU according to its state.
func (m *Machine) step(c *CPU) {
	switch c.state {
	case stateRunning:
		m.exec(c)
	case stateWaitEOI:
		if m.TLS.IsHead(c.ID) {
			m.commitEOI(c)
		} else {
			m.wait(c)
		}
	case stateWaitShutdown:
		if m.TLS.IsHead(c.ID) {
			m.doShutdown(c)
		} else {
			m.wait(c)
		}
	case stateWaitOverflow:
		if m.TLS.IsHead(c.ID) {
			newEpisode, err := m.TLS.DrainOverflow(c.ID)
			if err != nil {
				m.fail(err)
				return
			}
			m.noteOverflow(newEpisode)
			c.overflowPending = false
			c.state = stateRunning
			c.readyAt = m.Clock + 1
			if m.led != nil {
				m.led.SpanDrain(c.ID, m.Clock, c.readyAt)
			}
			if m.rec != nil {
				m.record(obs.EvOverflowDrain, c.ID, m.TLS.Iteration(c.ID), m.stlLoopID())
			}
		} else {
			m.waitAs(c, tls.ChargeWaitOverflow)
		}
	case stateWaitException:
		if m.TLS.IsHead(c.ID) {
			if c.pendingExKind == exKindMemFault {
				// The wild access reached architectural execution: it is a
				// genuine program fault, not a wrong-path artifact.
				m.fail(c.pendingFault)
				return
			}
			kind, ref := c.pendingExKind, c.pendingExRef
			c.pendingExKind, c.pendingExRef = 0, 0
			c.state = stateRunning
			m.dispatchException(c, kind, ref)
		} else {
			m.wait(c)
		}
	case stateWaitIO:
		if m.TLS.IsHead(c.ID) {
			m.Output = append(m.Output, c.pendingIO)
			c.PC++
			c.state = stateRunning
			c.readyAt = m.Clock + isa.Cost(isa.IOPUT)
			if m.led != nil {
				m.led.SpanIO(c.ID, m.Clock, c.readyAt)
			}
		} else {
			m.wait(c)
		}
	case stateWaitGC:
		if m.TLS.IsHead(c.ID) {
			m.quiesceForGC(c)
			m.Runtime.CollectGarbage(m, c.ID)
			m.GCRuns++
			if m.rec != nil {
				m.record(obs.EvGC, c.ID, m.GCRuns, 0)
			}
			c.state = stateRunning // PC unchanged: the alloc re-executes
			c.readyAt = m.Clock + 1 + c.extra
			c.extra = 0
			if m.led != nil {
				m.led.SpanGC(c.ID, m.Clock, c.readyAt)
			}
		} else {
			m.wait(c)
		}
	case stateWaitSwitchIn:
		if m.TLS.IsHead(c.ID) {
			m.doSwitchIn(c)
		} else {
			m.wait(c)
		}
	case stateWaitSwitchOut:
		if m.TLS.IsHead(c.ID) {
			m.doSwitchOut(c)
		} else {
			m.wait(c)
		}
	}
}

// commitEOI commits the head's iteration at STL_EOI and routes the CPU to
// its next iteration. The guard's decertify check runs before the commit:
// demotion pins the next spawned iteration to iter+1, which CommitEOI then
// hands to this CPU. In solo (sequential-fallback) mode the CPU re-enters
// the loop through STL_INIT, which re-derives all register state from the
// frame home slots and the hardware iteration register, so no speculative
// sibling context is needed.
func (m *Machine) commitEOI(c *CPU) {
	loopID := int64(-1)
	if m.curSTL != nil {
		loopID = m.curSTL.LoopID
	}
	if m.Guard != nil && loopID >= 0 && !m.TLS.Solo() && m.Guard.Decertified(loopID) {
		killed, err := m.TLS.DemoteSolo(c.ID)
		if err != nil {
			m.fail(err)
			return
		}
		for _, k := range killed {
			m.CPUs[k].state = stateIdle
			m.CPUs[k].overflowPending = false
		}
		if m.rec != nil {
			m.record(obs.EvGuardDemote, c.ID, loopID, 0)
			for _, k := range killed {
				m.record(obs.EvKill, k, loopID, 0)
			}
		}
		// The killed attempts flushed as violated under the old mode (they
		// were speculative work); only cycles from here on are solo.
		if m.led != nil {
			m.led.SetMode(obs.LoopSolo)
		}
	}
	iter := m.TLS.Iteration(c.ID)
	if err := m.TLS.CommitEOI(c.ID); err != nil {
		m.fail(err)
		return
	}
	if m.rec != nil {
		m.record(obs.EvCommit, c.ID, iter, loopID)
		m.record(obs.EvHandlerEOI, c.ID, m.TLS.Config().Handlers.EOI, loopID)
		m.record(obs.EvThreadSpawn, c.ID, m.TLS.Iteration(c.ID), loopID)
	}
	m.stormCount = 0
	// Solo commits are sequential execution, not evidence of speculative
	// health — feeding them to the guard would re-certify a thrashing loop
	// the moment it was demoted.
	if m.Guard != nil && loopID >= 0 && !m.TLS.Solo() {
		m.Guard.OnCommit(loopID)
	}
	if m.TLS.Solo() {
		c.MethodID = m.curSTL.Method
		c.PC = m.curSTL.InitPC
	} else {
		c.PC++
	}
	c.state = stateRunning
	c.readyAt = m.Clock + m.TLS.Config().Handlers.EOI
}

// noteOverflow attributes an overflow stall episode to the active STL's
// loop. Repeated drains within one episode arrive with newEpisode false and
// are not re-counted.
func (m *Machine) noteOverflow(newEpisode bool) {
	if !newEpisode || m.curSTL == nil {
		return
	}
	m.OverflowBySTL[m.curSTL.LoopID]++
	if m.Guard != nil {
		m.Guard.OnOverflow(m.curSTL.LoopID)
	}
}

// guardOnExit informs the guard that the active STL is shutting down (so a
// partial probe window is judged).
func (m *Machine) guardOnExit() {
	if m.Guard != nil && m.curSTL != nil {
		m.Guard.OnExit(m.curSTL.LoopID)
	}
}

// dataFault routes an out-of-range data access (a *mem.Fault recovered at
// the instruction boundary). A speculative non-head thread parks it like a
// deferred exception (§5.1): the wild address may be the product of a
// wrong-path value an older thread's store will soon squash. An access that
// reaches architectural execution is a genuine program fault and halts the
// machine with a typed MemFault.
func (m *Machine) dataFault(c *CPU, f *mem.Fault) {
	mf := &MemFault{
		CPU: c.ID, Cycle: m.Clock, Addr: f.Addr, Write: f.Write,
		Method: m.Image.Method(c.MethodID).Name, PC: c.PC,
	}
	c.extra = 0
	if m.TLS.Active() && !m.TLS.IsHead(c.ID) {
		c.pendingFault = mf
		c.pendingExKind = exKindMemFault
		c.state = stateWaitException
		m.recWait(c, obs.WaitException)
		m.wait(c)
		return
	}
	m.fail(mf)
}

// dataFaultAt is the panic-free route for a wild data access caught by an
// explicit bounds check in the dispatch loop: same disposition as dataFault,
// without materializing a *mem.Fault or unwinding through panic/recover —
// speculative wrong-path wild addresses are common enough that the unwind
// machinery showed up in profiles.
func (m *Machine) dataFaultAt(c *CPU, a mem.Addr, write bool) {
	mf := &MemFault{
		CPU: c.ID, Cycle: m.Clock, Addr: a, Write: write,
		Method: m.Image.Method(c.MethodID).Name, PC: c.PC,
	}
	c.extra = 0
	if m.TLS.Active() && !m.TLS.IsHead(c.ID) {
		c.pendingFault = mf
		c.pendingExKind = exKindMemFault
		c.state = stateWaitException
		m.recWait(c, obs.WaitException)
		m.wait(c)
		return
	}
	m.fail(mf)
}

// wildLoad handles a bounds-checked faulting load. The hardware load buffer
// latches the exposed read before the bus access resolves, so the tracking
// side effect happens even though no data transfers (matching what Unit.Load
// did before it faulted).
func (m *Machine) wildLoad(c *CPU, a mem.Addr, noViolate bool) {
	if m.TLS.Active() && !noViolate {
		m.TLS.TrackRead(c.ID, a)
	}
	m.dataFaultAt(c, a, false)
}

// wait charges one cycle of head-wait time and re-polls next cycle.
func (m *Machine) wait(c *CPU) { m.waitAs(c, tls.ChargeWait) }

// waitAs is wait with an explicit charge kind, so overflow-stall parking is
// distinguishable from ordinary commit waiting in the doctor's ledger (both
// land in the same StateStats wait counter).
func (m *Machine) waitAs(c *CPU, kind tls.ChargeKind) {
	if m.led == nil {
		m.TLS.ChargeAttempt(c.ID, kind, 1)
	} else {
		m.TLS.ChargeAttemptDiag(c.ID, kind, 1)
	}
	c.readyAt = m.Clock + 1
}

// record emits one flight-recorder event. Callers must have checked
// m.rec != nil so the disabled path never builds the event value.
func (m *Machine) record(kind obs.EventKind, cpu int, arg, aux int64) {
	m.rec.Record(obs.Event{Cycle: m.Clock, Kind: kind, CPU: int32(cpu), Arg: arg, Aux: aux})
}

// stlLoopID is the active STL's loop id for event payloads (-1 outside STLs).
func (m *Machine) stlLoopID() int64 {
	if m.curSTL == nil {
		return -1
	}
	return m.curSTL.LoopID
}

// recWait records c parking in a head-wait state. Recorded once at the
// transition, not per polled wait cycle.
func (m *Machine) recWait(c *CPU, reason int64) {
	if m.rec != nil {
		m.record(obs.EvThreadWait, c.ID, reason, m.stlLoopID())
	}
}

// recordMemLat classifies a load's charged latency into a cache-level event.
// Latency is a faithful fingerprint of the level because the configured
// levels are distinct by construction (L1 hit / L2 hit / interprocessor
// forward / memory).
func (m *Machine) recordMemLat(c *CPU, a mem.Addr, lat int64) {
	switch lat {
	case m.latL2:
		m.record(obs.EvL1Miss, c.ID, int64(a), 0)
	case m.latMem:
		m.record(obs.EvL2Miss, c.ID, int64(a), 0)
	case m.latInter:
		m.record(obs.EvBusTransfer, c.ID, int64(a), 0)
	}
}

// loadWord performs a data load, speculative or not, charging latency into
// the current instruction and informing the profiler.
func (m *Machine) loadWord(c *CPU, a mem.Addr, noViolate bool, cls AddrClass) int64 {
	if m.TLS.Active() {
		v, lat := m.TLS.Load(c.ID, a, noViolate)
		c.extra += lat
		if m.rec != nil {
			m.recordMemLat(c, a, lat)
		}
		if !noViolate && m.TLS.LoadOverflow(c.ID) {
			c.overflowPending = true
		}
		return v
	}
	v := m.Mem.Read(a)
	lat := m.Caches.Load(c.ID, a)
	c.extra += lat
	if m.rec != nil {
		m.recordMemLat(c, a, lat)
	}
	if m.Tracer != nil {
		if cls == ClassHeap && a >= StackRegionBase {
			cls = ClassStack
		}
		m.Tracer.OnLoad(a, m.Clock, cls)
	}
	return v
}

// storeWord performs a data store; speculative stores may violate younger
// threads, which are redirected to the STL restart point. Out-of-range
// addresses must be rejected before buffering — a buffered wild store would
// only fault at drain time, after the commit partially applied.
func (m *Machine) storeWord(c *CPU, a mem.Addr, v int64, cls AddrClass) {
	if m.TLS.Active() {
		if !m.Mem.InRange(a) {
			panic(&mem.Fault{Addr: a, Size: 1, Write: true})
		}
		lat, violated, err := m.TLS.Store(c.ID, a, v)
		if err != nil {
			m.fail(err)
			return
		}
		c.extra += lat
		for _, vc := range violated {
			if m.rec != nil {
				m.record(obs.EvViolation, vc, int64(a), int64(c.ID))
			}
			m.redirectRestart(m.CPUs[vc])
		}
		if m.TLS.StoreOverflow(c.ID) {
			c.overflowPending = true
		}
		return
	}
	m.Mem.Write(a, v)
	c.extra += m.Caches.Store(c.ID, a)
	if m.Tracer != nil {
		if cls == ClassHeap && a >= StackRegionBase {
			cls = ClassStack
		}
		m.Tracer.OnStore(a, m.Clock, cls)
	}
}

// RuntimeLoad lets the VM runtime read memory on behalf of a CPU with an
// address-class tag; latency is charged to the CPU's current instruction.
func (m *Machine) RuntimeLoad(cpu int, a mem.Addr, cls AddrClass) int64 {
	return m.loadWord(m.CPUs[cpu], a, false, cls)
}

// RuntimeStore is the store counterpart of RuntimeLoad.
func (m *Machine) RuntimeStore(cpu int, a mem.Addr, v int64, cls AddrClass) {
	m.storeWord(m.CPUs[cpu], a, v, cls)
}

// RawRead reads memory without timing or speculation (GC heap walks, debug).
func (m *Machine) RawRead(a mem.Addr) int64 { return m.Mem.Read(a) }

// RawWrite writes memory without timing or speculation. Only safe outside
// speculative execution (the VM uses it during stop-the-world collection).
func (m *Machine) RawWrite(a mem.Addr, v int64) { m.Mem.Write(a, v) }

// ChargeGC charges collector cycles to the invoking CPU and to the GC
// accounting bucket (Figure 9).
func (m *Machine) ChargeGC(cpu int, cycles int64) {
	m.CPUs[cpu].extra += cycles
	m.GCCycles += cycles
}

// SpecActive reports whether thread speculation is running.
func (m *Machine) SpecActive() bool { return m.TLS.Active() }

// quiesceForGC makes memory consistent before a stop-the-world collection
// that must run while speculation is active: the head's partial buffer
// commits (its state is non-speculative) and every younger thread is
// discarded and sent back to the restart point. The collector then sees
// flat-memory truth with empty store buffers.
func (m *Machine) quiesceForGC(c *CPU) {
	if !m.TLS.Active() {
		return
	}
	if err := m.TLS.CommitPartial(c.ID); err != nil {
		m.fail(err)
		return
	}
	// These discards have no violating store address: attribute them to the
	// synthetic GC-quiesce site.
	if m.led != nil {
		m.led.BeginSyntheticViolation(obs.SiteGC)
	}
	for _, vc := range m.TLS.ViolateFrom(m.TLS.Iteration(c.ID) + 1) {
		if m.rec != nil {
			m.record(obs.EvViolation, vc, -2, int64(c.ID))
		}
		m.redirectRestart(m.CPUs[vc])
	}
	if m.led != nil {
		m.led.EndViolation()
	}
}

// redirectRestart sends a violated CPU back to the STL restart point: the
// call stack unwinds to the loop context and execution resumes at STL_INIT
// with the restart handler cost charged (the tls unit already flushed the
// discarded attempt and charged the handler to the new attempt).
func (m *Machine) redirectRestart(c *CPU) {
	if m.curSTL == nil {
		m.fail(fmt.Errorf("%w: violation with no active STL", ErrInternal))
		return
	}
	m.stormCount++
	if m.stormCount > m.stormLimit {
		m.fail(&tls.ViolationStormError{Restarts: m.stormCount, LoopID: m.curSTL.LoopID})
		return
	}
	if m.Guard != nil {
		m.Guard.OnViolation(m.curSTL.LoopID)
	}
	if len(c.frames) > c.snap.depth {
		c.frames = c.frames[:c.snap.depth]
	}
	c.Regs[isa.SP] = c.snap.sp
	c.Regs[isa.FP] = c.snap.fp
	c.MethodID = m.curSTL.Method
	c.PC = m.curSTL.InitPC
	c.state = stateRunning
	c.pendingExKind, c.pendingExRef = 0, 0
	c.pendingFault = nil
	c.overflowPending = false
	c.gcAttempts = 0
	c.extra = 0
	at := c.readyAt
	if at < m.Clock {
		at = m.Clock
	}
	c.readyAt = at + m.TLS.Config().Handlers.Restart
	if m.rec != nil {
		m.record(obs.EvHandlerRestart, c.ID, m.TLS.Config().Handlers.Restart, m.curSTL.LoopID)
		m.record(obs.EvRestart, c.ID, m.TLS.Iteration(c.ID), m.curSTL.LoopID)
	}
}

// doShutdown finalizes an STL: the exiting head commits, younger threads are
// killed, and the exiting CPU becomes the master continuing serial
// execution (its registers hold the architecturally correct loop-exit
// state, since it executed the final iteration).
func (m *Machine) doShutdown(c *CPU) {
	loopID := m.stlLoopID()
	killed, err := m.TLS.Shutdown(c.ID)
	if err != nil {
		m.fail(err)
		return
	}
	for _, k := range killed {
		m.CPUs[k].state = stateIdle
		m.CPUs[k].overflowPending = false
	}
	m.Master = c.ID
	shutdown := m.TLS.Config().Handlers.Shutdown
	if m.curSTL != nil && m.curSTL.Hoisted && shutdown > HoistShutdownSaving {
		// Hoisted STLs leave the slaves spun up for the next entry.
		shutdown -= HoistShutdownSaving
	}
	if m.rec != nil {
		for _, k := range killed {
			m.record(obs.EvKill, k, loopID, 0)
		}
		m.record(obs.EvHandlerShutdown, c.ID, shutdown, loopID)
		m.record(obs.EvSTLShutdown, c.ID, loopID, 0)
	}
	m.guardOnExit()
	m.stormCount = 0
	m.curSTL = nil
	m.outerSTL = nil
	c.overflowPending = false
	c.PC++
	c.state = stateRunning
	c.readyAt = m.Clock + shutdown
	if m.led != nil {
		m.led.SpanShutdown(c.ID, m.Clock, c.readyAt)
		m.led.EndSTL()
	}
}

// doSwitchIn performs the multilevel decomposition switch (§4.2.6): the
// head commits its partial outer iteration, younger outer threads are
// discarded, and all CPUs redeploy onto the inner STL.
func (m *Machine) doSwitchIn(c *CPU) {
	inner, ok := m.Image.STLs[m.pendingSwitchID(c)]
	if !ok {
		m.fail(m.badProgram(c, "multilevel switch into unknown STL %d", m.pendingSwitchID(c)))
		return
	}
	if err := m.TLS.CommitPartial(c.ID); err != nil {
		m.fail(err)
		return
	}
	m.TLS.KillYounger(c.ID)
	m.outerSTL = m.curSTL
	m.outerResume = m.TLS.Iteration(c.ID)
	m.curSTL = inner
	if err := m.TLS.SwitchSTL(inner.ID, c.ID, 0); err != nil {
		m.fail(err)
		return
	}
	if m.rec != nil {
		m.record(obs.EvSTLSwitch, c.ID, inner.LoopID, 0)
		m.record(obs.EvThreadSpawn, c.ID, m.TLS.Iteration(c.ID), inner.LoopID)
	}
	if m.led != nil {
		m.led.SwitchTo(inner.LoopID)
	}
	if !m.TLS.Solo() {
		m.deploySlaves(c, c.PC+1, SwitchStartupCost, true)
	}
	c.PC++
	c.state = stateRunning
	c.readyAt = m.Clock + SwitchStartupCost
	if m.led != nil {
		m.led.SpanSwitch(c.ID, m.Clock, c.readyAt)
	}
	m.snapshotAll()
}

// doSwitchOut restores the outer STL after the inner loop completes. The
// switching CPU resumes its partial outer iteration as the head; the other
// CPUs restart speculation at the outer STL_INIT with the following
// iteration indices.
func (m *Machine) doSwitchOut(c *CPU) {
	if m.outerSTL == nil {
		m.fail(m.badProgram(c, "multilevel switch out with no outer STL"))
		return
	}
	if err := m.TLS.CommitPartial(c.ID); err != nil {
		m.fail(err)
		return
	}
	m.TLS.KillYounger(c.ID)
	outer := m.outerSTL
	m.outerSTL = nil
	m.curSTL = outer
	if err := m.TLS.SwitchSTL(outer.ID, c.ID, m.outerResume); err != nil {
		m.fail(err)
		return
	}
	if m.rec != nil {
		m.record(obs.EvSTLSwitch, c.ID, outer.LoopID, 1)
		m.record(obs.EvThreadSpawn, c.ID, m.TLS.Iteration(c.ID), outer.LoopID)
	}
	if m.led != nil {
		m.led.SwitchTo(outer.LoopID)
	}
	if !m.TLS.Solo() {
		m.deploySlaves(c, outer.InitPC, SwitchShutdownCost, true)
	}
	c.PC++
	c.state = stateRunning
	c.readyAt = m.Clock + SwitchShutdownCost
	if m.led != nil {
		m.led.SpanSwitch(c.ID, m.Clock, c.readyAt)
	}
	m.snapshotAll()
}

// pendingSwitchID reads the inner STL id from the STLSWSTART instruction the
// CPU is parked on.
func (m *Machine) pendingSwitchID(c *CPU) int64 {
	return m.Image.Method(c.MethodID).Code[c.PC].Imm
}

// deploySlaves copies the leader's context to every other CPU and starts
// them at pc. sw marks a multilevel-switch redeploy, which the ledger
// attributes to the switch bucket rather than startup.
func (m *Machine) deploySlaves(c *CPU, pc int, cost int64, sw bool) {
	for _, sc := range m.CPUs {
		if sc.ID == c.ID {
			continue
		}
		sc.Regs = c.Regs
		sc.frames = append(sc.frames[:0], c.frames...)
		sc.MethodID = c.MethodID
		sc.PC = pc
		sc.state = stateRunning
		sc.readyAt = m.Clock + cost
		sc.pendingExKind, sc.pendingExRef = 0, 0
		sc.pendingFault = nil
		sc.overflowPending = false
		if m.led != nil {
			if sw {
				m.led.SpanSwitch(sc.ID, m.Clock, sc.readyAt)
			} else {
				m.led.SpanStartup(sc.ID, m.Clock, sc.readyAt)
			}
		}
		if m.rec != nil {
			m.record(obs.EvThreadSpawn, sc.ID, m.TLS.Iteration(sc.ID), m.stlLoopID())
		}
	}
}

// snapshotAll records every CPU's restart context for the current STL.
func (m *Machine) snapshotAll() {
	for _, c := range m.CPUs {
		c.snap = snapshot{depth: len(c.frames), sp: c.Regs[isa.SP], fp: c.Regs[isa.FP]}
	}
}
