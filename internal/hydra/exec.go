package hydra

import (
	"fmt"
	"math"

	"jrpm/internal/isa"
	"jrpm/internal/mem"
	"jrpm/internal/obs"
	"jrpm/internal/tls"
)

func f64(bits int64) float64 { return math.Float64frombits(uint64(bits)) }
func bits(f float64) int64   { return int64(math.Float64bits(f)) }
func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// exec runs one instruction on c. Out-of-range data accesses surface as
// *mem.Fault panics from the memory model; recovering at the instruction
// boundary leaves the CPU parked on the faulting instruction with no partial
// architectural update, so a speculative fault can defer cleanly (§5.1).
func (m *Machine) exec(c *CPU) {
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(*mem.Fault)
			if !ok {
				panic(r) // not a data fault; Run's backstop converts it
			}
			m.dataFault(c, f)
		}
	}()
	method := m.Image.Method(c.MethodID)
	if c.PC < 0 || c.PC >= len(method.Code) {
		m.fail(m.badProgram(c, "pc %d out of range in %s", c.PC, method.Name))
		return
	}
	in := method.Code[c.PC]
	m.Instructions++
	c.extra = 0
	// Deterministic fault injection: a spurious RAW violation hits this
	// speculative thread as if an older store had touched one of its exposed
	// reads (the thread and everything younger restart).
	if m.TLS.Active() && !m.TLS.IsHead(c.ID) && m.inj.SpuriousRAW() {
		if m.led != nil {
			m.led.BeginSyntheticViolation(obs.SiteInjected)
		}
		for _, vc := range m.TLS.ViolateFrom(m.TLS.Iteration(c.ID)) {
			if m.rec != nil {
				m.record(obs.EvViolation, vc, -1, int64(c.ID))
			}
			m.redirectRestart(m.CPUs[vc])
		}
		if m.led != nil {
			m.led.EndViolation()
		}
		return
	}
	cost := isa.Cost(in.Op)
	r := &c.Regs
	advance := true

	switch in.Op {
	case isa.NOP:

	// Integer ALU.
	case isa.ADD:
		r[in.Rd] = r[in.Rs] + r[in.Rt]
	case isa.SUB:
		r[in.Rd] = r[in.Rs] - r[in.Rt]
	case isa.MUL:
		r[in.Rd] = r[in.Rs] * r[in.Rt]
	case isa.DIV:
		if r[in.Rt] == 0 {
			m.trap(c, isa.ExArithmetic, 0)
			return
		}
		r[in.Rd] = r[in.Rs] / r[in.Rt]
	case isa.REM:
		if r[in.Rt] == 0 {
			m.trap(c, isa.ExArithmetic, 0)
			return
		}
		r[in.Rd] = r[in.Rs] % r[in.Rt]
	case isa.AND:
		r[in.Rd] = r[in.Rs] & r[in.Rt]
	case isa.OR:
		r[in.Rd] = r[in.Rs] | r[in.Rt]
	case isa.XOR:
		r[in.Rd] = r[in.Rs] ^ r[in.Rt]
	case isa.NOR:
		r[in.Rd] = ^(r[in.Rs] | r[in.Rt])
	case isa.SLL:
		r[in.Rd] = r[in.Rs] << uint64(r[in.Rt]&63)
	case isa.SRL:
		r[in.Rd] = int64(uint64(r[in.Rs]) >> uint64(r[in.Rt]&63))
	case isa.SRA:
		r[in.Rd] = r[in.Rs] >> uint64(r[in.Rt]&63)
	case isa.SLT:
		r[in.Rd] = b2i(r[in.Rs] < r[in.Rt])
	case isa.SLE:
		r[in.Rd] = b2i(r[in.Rs] <= r[in.Rt])
	case isa.SEQ:
		r[in.Rd] = b2i(r[in.Rs] == r[in.Rt])
	case isa.SNE:
		r[in.Rd] = b2i(r[in.Rs] != r[in.Rt])
	case isa.MIN:
		if r[in.Rs] < r[in.Rt] {
			r[in.Rd] = r[in.Rs]
		} else {
			r[in.Rd] = r[in.Rt]
		}
	case isa.MAX:
		if r[in.Rs] > r[in.Rt] {
			r[in.Rd] = r[in.Rs]
		} else {
			r[in.Rd] = r[in.Rt]
		}

	// Immediate forms.
	case isa.ADDI:
		r[in.Rd] = r[in.Rs] + in.Imm
	case isa.ANDI:
		r[in.Rd] = r[in.Rs] & in.Imm
	case isa.ORI:
		r[in.Rd] = r[in.Rs] | in.Imm
	case isa.XORI:
		r[in.Rd] = r[in.Rs] ^ in.Imm
	case isa.SLLI:
		r[in.Rd] = r[in.Rs] << uint64(in.Imm&63)
	case isa.SRLI:
		r[in.Rd] = int64(uint64(r[in.Rs]) >> uint64(in.Imm&63))
	case isa.SRAI:
		r[in.Rd] = r[in.Rs] >> uint64(in.Imm&63)
	case isa.SLTI:
		r[in.Rd] = b2i(r[in.Rs] < in.Imm)
	case isa.LI:
		r[in.Rd] = in.Imm

	// Floating point.
	case isa.FADD:
		r[in.Rd] = bits(f64(r[in.Rs]) + f64(r[in.Rt]))
	case isa.FSUB:
		r[in.Rd] = bits(f64(r[in.Rs]) - f64(r[in.Rt]))
	case isa.FMUL:
		r[in.Rd] = bits(f64(r[in.Rs]) * f64(r[in.Rt]))
	case isa.FDIV:
		r[in.Rd] = bits(f64(r[in.Rs]) / f64(r[in.Rt]))
	case isa.FNEG:
		r[in.Rd] = bits(-f64(r[in.Rs]))
	case isa.FABS:
		r[in.Rd] = bits(math.Abs(f64(r[in.Rs])))
	case isa.FMIN:
		r[in.Rd] = bits(math.Min(f64(r[in.Rs]), f64(r[in.Rt])))
	case isa.FMAX:
		r[in.Rd] = bits(math.Max(f64(r[in.Rs]), f64(r[in.Rt])))
	case isa.FSLT:
		r[in.Rd] = b2i(f64(r[in.Rs]) < f64(r[in.Rt]))
	case isa.FSLE:
		r[in.Rd] = b2i(f64(r[in.Rs]) <= f64(r[in.Rt]))
	case isa.FSEQ:
		r[in.Rd] = b2i(f64(r[in.Rs]) == f64(r[in.Rt]))
	case isa.CVTIF:
		r[in.Rd] = bits(float64(r[in.Rs]))
	case isa.CVTFI:
		r[in.Rd] = int64(f64(r[in.Rs]))
	case isa.FSQRT:
		r[in.Rd] = bits(math.Sqrt(f64(r[in.Rs])))
	case isa.FSIN:
		r[in.Rd] = bits(math.Sin(f64(r[in.Rs])))
	case isa.FCOS:
		r[in.Rd] = bits(math.Cos(f64(r[in.Rs])))
	case isa.FEXP:
		r[in.Rd] = bits(math.Exp(f64(r[in.Rs])))
	case isa.FLOG:
		r[in.Rd] = bits(math.Log(f64(r[in.Rs])))

	// Memory. Effective addresses are bounds-checked here so the common wild
	// wrong-path access takes a direct branch to the fault disposition instead
	// of a panic unwind out of the memory model.
	case isa.LW:
		a := mem.Addr(r[in.Rs] + in.Imm)
		if !m.Mem.InRange(a) {
			m.wildLoad(c, a, false)
			return
		}
		r[in.Rd] = m.loadWord(c, a, false, ClassHeap)
	case isa.LWNV:
		a := mem.Addr(r[in.Rs] + in.Imm)
		if !m.Mem.InRange(a) {
			m.wildLoad(c, a, true)
			return
		}
		r[in.Rd] = m.loadWord(c, a, true, ClassHeap)
	case isa.SW:
		a := mem.Addr(r[in.Rs] + in.Imm)
		if !m.Mem.InRange(a) {
			m.dataFaultAt(c, a, true)
			return
		}
		m.storeWord(c, a, r[in.Rt], ClassHeap)

	// Control flow.
	case isa.BEQ:
		if r[in.Rs] == r[in.Rt] {
			c.PC = in.Target
			advance = false
		}
	case isa.BNE:
		if r[in.Rs] != r[in.Rt] {
			c.PC = in.Target
			advance = false
		}
	case isa.BLT:
		if r[in.Rs] < r[in.Rt] {
			c.PC = in.Target
			advance = false
		}
	case isa.BGE:
		if r[in.Rs] >= r[in.Rt] {
			c.PC = in.Target
			advance = false
		}
	case isa.BLE:
		if r[in.Rs] <= r[in.Rt] {
			c.PC = in.Target
			advance = false
		}
	case isa.BGT:
		if r[in.Rs] > r[in.Rt] {
			c.PC = in.Target
			advance = false
		}
	case isa.J:
		c.PC = in.Target
		advance = false
	case isa.CALL:
		callee := m.Image.Method(in.Target)
		c.frames = append(c.frames, frame{
			retMethod: c.MethodID, retPC: c.PC + 1,
			savedFP: r[isa.FP], savedSP: r[isa.SP],
		})
		r[isa.SP] -= callee.FrameWords
		r[isa.FP] = r[isa.SP]
		if mem.Addr(r[isa.SP]) <= HeapBase {
			m.fail(fmt.Errorf("%w: cpu%d calling %s at cycle %d (sp %d)",
				ErrStackOverflow, c.ID, callee.Name, m.Clock, r[isa.SP]))
			return
		}
		c.MethodID = in.Target
		c.PC = 0
		advance = false
		cost = 2
	case isa.RET:
		if len(c.frames) == 0 {
			m.halted = true
			return
		}
		f := c.frames[len(c.frames)-1]
		c.frames = c.frames[:len(c.frames)-1]
		r[isa.FP] = f.savedFP
		r[isa.SP] = f.savedSP
		c.MethodID = f.retMethod
		c.PC = f.retPC
		advance = false
		cost = 2

	// TEST annotations (present only in annotation-mode code).
	case isa.LWL:
		if m.Tracer != nil {
			gslot := uint32(c.MethodID)*256 + uint32(in.Imm)
			key := uint64(r[isa.FP])<<16 | uint64(gslot)
			m.Tracer.OnLocalLoad(key, gslot, m.Clock)
		}
	case isa.SWL:
		if m.Tracer != nil {
			gslot := uint32(c.MethodID)*256 + uint32(in.Imm)
			key := uint64(r[isa.FP])<<16 | uint64(gslot)
			m.Tracer.OnLocalStore(key, gslot, m.Clock)
		}
	case isa.SLOOP:
		if m.Tracer != nil {
			m.Tracer.OnSloop(in.Imm, m.Clock)
		}
	case isa.EOI:
		if m.Tracer != nil {
			m.Tracer.OnEOI(in.Imm, m.Clock)
		}
	case isa.ELOOP:
		if m.Tracer != nil {
			m.Tracer.OnEloop(in.Imm, m.Clock)
		}

	// TLS control.
	case isa.STLSTART:
		m.doSTLStart(c, in.Imm)
		return
	case isa.STLEOI:
		if m.TLS.IsHead(c.ID) {
			m.commitEOI(c)
		} else {
			c.state = stateWaitEOI
			m.recWait(c, obs.WaitEOI)
			m.wait(c)
		}
		return
	case isa.STLSHUTDOWN:
		if m.TLS.IsHead(c.ID) {
			m.doShutdown(c)
		} else {
			c.state = stateWaitShutdown
			m.recWait(c, obs.WaitShutdown)
			m.wait(c)
		}
		return
	case isa.STLSWSTART:
		if m.outerSTL != nil {
			m.fail(m.badProgram(c, "nested multilevel STL switch"))
			return
		}
		if m.TLS.IsHead(c.ID) {
			m.doSwitchIn(c)
		} else {
			c.state = stateWaitSwitchIn
			m.recWait(c, obs.WaitSwitchIn)
			m.wait(c)
		}
		return
	case isa.STLSWEND:
		if m.TLS.IsHead(c.ID) {
			m.doSwitchOut(c)
		} else {
			c.state = stateWaitSwitchOut
			m.recWait(c, obs.WaitSwitchOut)
			m.wait(c)
		}
		return
	case isa.MFC2:
		switch in.Imm {
		case isa.CP2Iteration:
			r[in.Rd] = m.TLS.Iteration(c.ID)
		case isa.CP2CPUID:
			r[in.Rd] = int64(c.ID)
		default:
			m.fail(m.badProgram(c, "unknown cp2 register %d", in.Imm))
			return
		}

	// VM runtime.
	case isa.ALLOC:
		// Injected heap exhaustion forces the GC path exactly once per
		// allocation site visit (never when a real collection already ran,
		// so injection cannot fake an out-of-memory condition).
		if c.gcAttempts == 0 && m.inj.HeapExhausted() {
			m.requestGC(c)
			return
		}
		ref, gcNeeded := m.Runtime.Alloc(m, c.ID, in.Imm)
		if gcNeeded {
			m.requestGC(c)
			return
		}
		c.gcAttempts = 0
		r[in.Rd] = ref
	case isa.ALLOCARR:
		n := r[in.Rs]
		if n < 0 {
			m.trap(c, isa.ExArrayBounds, 0)
			return
		}
		if c.gcAttempts == 0 && m.inj.HeapExhausted() {
			m.requestGC(c)
			return
		}
		ref, gcNeeded := m.Runtime.AllocArray(m, c.ID, n)
		if gcNeeded {
			m.requestGC(c)
			return
		}
		c.gcAttempts = 0
		r[in.Rd] = ref
	case isa.MONENTER:
		if r[in.Rs] == 0 {
			m.trap(c, isa.ExNullPointer, 0)
			return
		}
		m.Runtime.MonitorEnter(m, c.ID, r[in.Rs])
	case isa.MONEXIT:
		if r[in.Rs] == 0 {
			m.trap(c, isa.ExNullPointer, 0)
			return
		}
		m.Runtime.MonitorExit(m, c.ID, r[in.Rs])
	case isa.THROW:
		m.trap(c, isa.ExUser, r[in.Rs])
		return
	case isa.CHKNULL:
		if r[in.Rs] == 0 {
			m.trap(c, isa.ExNullPointer, 0)
			return
		}
	case isa.CHKIDX:
		ref := r[in.Rs]
		if ref == 0 {
			m.trap(c, isa.ExNullPointer, 0)
			return
		}
		length := m.loadWord(c, mem.Addr(ref+2), false, ClassHeap)
		if idx := r[in.Rt]; idx < 0 || idx >= length {
			m.trap(c, isa.ExArrayBounds, 0)
			return
		}
	case isa.IOPUT:
		if m.TLS.Active() && !m.TLS.IsHead(c.ID) {
			c.pendingIO = r[in.Rs]
			c.state = stateWaitIO
			m.recWait(c, obs.WaitIO)
			m.wait(c)
			return
		}
		m.Output = append(m.Output, r[in.Rs])
	case isa.HALT:
		m.halted = true
		return

	default:
		m.fail(m.badProgram(c, "unimplemented op %s", in.Op.Name()))
		return
	}

	r[isa.Zero] = 0
	if advance {
		c.PC++
	}
	total := cost + c.extra
	c.extra = 0
	c.readyAt = m.Clock + total
	if m.led == nil {
		m.TLS.ChargeAttempt(c.ID, tls.ChargeRun, total)
	} else {
		m.TLS.ChargeAttemptDiag(c.ID, tls.ChargeRun, total)
	}
	if c.overflowPending && m.TLS.Active() {
		if m.rec != nil {
			kind := obs.EvLoadOverflow
			if m.TLS.StoreOverflow(c.ID) {
				kind = obs.EvStoreOverflow
			}
			m.record(kind, c.ID, m.TLS.Iteration(c.ID), m.stlLoopID())
		}
		if m.TLS.IsHead(c.ID) {
			newEpisode, err := m.TLS.DrainOverflow(c.ID)
			if err != nil {
				m.fail(err)
				return
			}
			m.noteOverflow(newEpisode)
			c.overflowPending = false
			if m.rec != nil {
				m.record(obs.EvOverflowDrain, c.ID, m.TLS.Iteration(c.ID), m.stlLoopID())
			}
		} else {
			c.state = stateWaitOverflow
			m.recWait(c, obs.WaitOverflow)
		}
	}
}

// doSTLStart activates speculation at an STLSTART instruction: the executing
// master becomes the head of iteration 0 and the slave CPUs wake at the
// following instruction (STL_INIT) with copies of the master's context.
func (m *Machine) doSTLStart(c *CPU, stlID int64) {
	if m.TLS.Active() {
		m.fail(m.badProgram(c, "STLSTART while speculation active (decomposition selection bug)"))
		return
	}
	desc, ok := m.Image.STLs[stlID]
	if !ok {
		m.fail(m.badProgram(c, "unknown STL %d", stlID))
		return
	}
	m.curSTL = desc
	m.stlFrameDepth = len(c.frames)
	m.stormCount = 0
	// A loop the guard has decertified enters in solo (sequential-fallback)
	// mode: only this CPU runs, iterations advance one at a time, and the
	// loop keeps its TLS-compiled code but sequential semantics. The
	// decertified flag is read before Allow, which consumes backoff state,
	// so the recorder can distinguish a re-probe from a plain start.
	wasDecert := m.Guard != nil && m.Guard.Decertified(desc.LoopID)
	solo := m.Guard != nil && !m.Guard.Allow(desc.LoopID)
	var err error
	if solo {
		err = m.TLS.StartSolo(desc.ID, c.ID)
	} else {
		err = m.TLS.StartAt(desc.ID, c.ID, 0)
	}
	if err != nil {
		m.fail(err)
		return
	}
	startup := m.TLS.Config().Handlers.Startup
	if desc.Hoisted && m.lastHoisted == desc.ID {
		// Repeat entry of a hoisted STL: the slaves are already awake.
		if startup > HoistStartupSaving {
			startup -= HoistStartupSaving
		}
	}
	m.lastHoisted = desc.ID
	if m.rec != nil {
		mode := int64(0)
		switch {
		case solo:
			mode = 1
			m.record(obs.EvGuardSolo, c.ID, desc.LoopID, 0)
		case wasDecert:
			mode = 2
			m.record(obs.EvGuardProbe, c.ID, desc.LoopID, 0)
		}
		m.record(obs.EvSTLStart, c.ID, desc.LoopID, mode)
		m.record(obs.EvHandlerStartup, c.ID, startup, desc.LoopID)
		m.record(obs.EvThreadSpawn, c.ID, m.TLS.Iteration(c.ID), desc.LoopID)
	}
	if m.led != nil {
		mode := obs.LoopParallel
		switch {
		case solo:
			mode = obs.LoopSolo
		case wasDecert:
			mode = obs.LoopProbe
		}
		m.led.BeginSTL(desc.LoopID, mode)
	}
	if !solo {
		m.deploySlaves(c, c.PC+1, startup, false)
	}
	c.PC++
	c.readyAt = m.Clock + startup
	if m.led != nil {
		m.led.SpanStartup(c.ID, m.Clock, c.readyAt)
	}
	m.snapshotAll()
}

// requestGC parks a CPU whose allocation failed; the collection runs once
// the thread is non-speculative. If a collection already ran for this
// allocation and the heap is still exhausted, the program is out of memory.
func (m *Machine) requestGC(c *CPU) {
	c.gcAttempts++
	if c.gcAttempts > 1 {
		m.fail(fmt.Errorf("%w: allocation by cpu%d still fails after collection (cycle %d)",
			ErrOutOfMemory, c.ID, m.Clock))
		return
	}
	if m.TLS.Active() && !m.TLS.IsHead(c.ID) {
		c.state = stateWaitGC
		m.recWait(c, obs.WaitGC)
		m.wait(c)
		return
	}
	m.quiesceForGC(c)
	m.Runtime.CollectGarbage(m, c.ID)
	m.GCRuns++
	if m.rec != nil {
		m.record(obs.EvGC, c.ID, m.GCRuns, 0)
	}
	// PC unchanged: re-execute the allocation.
	c.readyAt = m.Clock + 1 + c.extra
	c.extra = 0
	if m.led != nil {
		m.led.SpanGC(c.ID, m.Clock, c.readyAt)
	}
}

// trap raises a hardware or software exception at the current pc. A
// speculative non-head thread defers the exception until it becomes the head
// (it may yet be violated, in which case the exception was false — §5.1).
func (m *Machine) trap(c *CPU, kind int64, ref int64) {
	if m.TLS.Active() && !m.TLS.IsHead(c.ID) {
		c.pendingExKind = kind
		c.pendingExRef = ref
		c.state = stateWaitException
		m.recWait(c, obs.WaitException)
		m.wait(c)
		return
	}
	m.dispatchException(c, kind, ref)
}

// dispatchException finds the nearest matching handler up the call stack. A
// handler inside the active STL region keeps speculation alive (the catch is
// part of the iteration); otherwise speculation terminates before control
// transfers out (§5.1).
func (m *Machine) dispatchException(c *CPU, kind int64, ref int64) {
	methodID := c.MethodID
	pc := c.PC
	depth := len(c.frames)
	for {
		meth := m.Image.Method(methodID)
		for _, h := range meth.Handlers {
			if pc >= h.Start && pc < h.End && (h.Kind == 0 || h.Kind == kind) {
				m.resolveHandler(c, depth, methodID, h.Target, ref)
				return
			}
		}
		if depth == 0 {
			m.fail(fmt.Errorf("%w: kind %d in %s at pc %d", ErrUncaughtException, kind, meth.Name, pc))
			return
		}
		depth--
		f := c.frames[depth]
		methodID = f.retMethod
		pc = f.retPC - 1 // the call site
	}
}

// resolveHandler unwinds to the handler frame and jumps to the handler with
// the exception object in $v0.
func (m *Machine) resolveHandler(c *CPU, depth int, methodID int, target int, ref int64) {
	if m.TLS.Active() {
		stay := depth > m.stlFrameDepth ||
			(depth == m.stlFrameDepth && methodID == m.curSTL.Method &&
				target >= m.curSTL.BodyStart && target < m.curSTL.BodyEnd)
		if !stay {
			loopID := m.stlLoopID()
			killed, err := m.TLS.Shutdown(c.ID)
			if err != nil {
				m.fail(err)
				return
			}
			for _, k := range killed {
				m.CPUs[k].state = stateIdle
			}
			if m.rec != nil {
				for _, k := range killed {
					m.record(obs.EvKill, k, loopID, 0)
				}
				m.record(obs.EvSTLShutdown, c.ID, loopID, 0)
			}
			m.Master = c.ID
			m.guardOnExit()
			m.stormCount = 0
			m.curSTL = nil
			m.outerSTL = nil
			if m.led != nil {
				m.led.EndSTL()
			}
		}
	}
	unwound := len(c.frames) - depth
	for len(c.frames) > depth {
		// Restore the callee-saved registers the abandoned frame's method
		// stored in its prologue (its epilogue will never run).
		meth := m.Image.Method(c.MethodID)
		for i, reg := range meth.SavedRegs {
			c.Regs[reg] = m.loadWord(c, mem.Addr(c.Regs[isa.FP]+meth.SaveBase+int64(i)), false, ClassHeap)
		}
		f := c.frames[len(c.frames)-1]
		c.frames = c.frames[:len(c.frames)-1]
		c.Regs[isa.FP] = f.savedFP
		c.Regs[isa.SP] = f.savedSP
		c.MethodID = f.retMethod
	}
	c.MethodID = methodID
	c.PC = target
	c.Regs[isa.V0] = ref
	c.state = stateRunning
	c.readyAt = m.Clock + int64(10+5*unwound)
	if m.led != nil {
		m.led.SpanException(c.ID, m.Clock, c.readyAt)
	}
}
