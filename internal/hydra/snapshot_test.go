package hydra

import (
	"testing"

	"jrpm/internal/isa"
)

// snapshotLoopImage is a serial counting loop with a PRINT at the end —
// enough cycles for mid-run safepoints, deterministic final output.
func snapshotLoopImage(n int64) *Image {
	b := isa.NewBuilder()
	b.Li(isa.T0, 0)
	b.Li(isa.T1, 0)
	b.Li(isa.T2, n)
	b.Label("loop")
	b.Op3(isa.ADD, isa.T1, isa.T1, isa.T0)
	b.OpImm(isa.ADDI, isa.T0, isa.T0, 1)
	b.Br(isa.BLT, isa.T0, isa.T2, "loop")
	b.Emit(isa.Instr{Op: isa.IOPUT, Rs: isa.T1})
	b.Emit(isa.Instr{Op: isa.HALT})
	return image(&Method{Name: "main", Code: b.Finish(), FrameWords: 8})
}

// TestSnapshotRestoreResumesIdentically is the machine-level resume law: a
// snapshot captured mid-run, restored into a fresh machine over the same
// image, finishes with the same clock, instruction count and output as the
// uninterrupted run.
func TestSnapshotRestoreResumesIdentically(t *testing.T) {
	const budget = 50_000_000
	img := snapshotLoopImage(200_000)
	opts := DefaultOptions()

	ref := NewMachine(img, newStubRuntime(), opts)
	if err := ref.Run(budget); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	var snaps []*MachineSnapshot
	cp := &Checkpointer{Stride: 4096}
	cp.Sink = func(s *MachineSnapshot) {
		snaps = append(snaps, s)
		cp.Request() // re-arm: capture at every safepoint edge
	}
	copts := opts
	copts.Checkpoint = cp
	cap := NewMachine(img, newStubRuntime(), copts)
	cp.Request()
	if err := cap.Run(budget); err != nil {
		t.Fatalf("capture run: %v", err)
	}
	if len(snaps) < 3 {
		t.Fatalf("captured %d snapshots, want several", len(snaps))
	}
	if cap.Clock != ref.Clock {
		t.Fatalf("checkpoint latch perturbed the run: clock %d vs %d", cap.Clock, ref.Clock)
	}

	for _, i := range []int{0, len(snaps) / 2, len(snaps) - 1} {
		m := NewMachine(img, newStubRuntime(), opts)
		if err := m.Restore(snaps[i]); err != nil {
			t.Fatalf("snapshot %d: restore: %v", i, err)
		}
		if err := m.Run(budget); err != nil {
			t.Fatalf("snapshot %d: resumed run: %v", i, err)
		}
		if m.Clock != ref.Clock || m.Instructions != ref.Instructions {
			t.Fatalf("snapshot %d (clock %d): resumed to clock=%d instr=%d, want clock=%d instr=%d",
				i, snaps[i].Clock, m.Clock, m.Instructions, ref.Clock, ref.Instructions)
		}
		if len(m.Output) != len(ref.Output) || (len(ref.Output) > 0 && m.Output[0] != ref.Output[0]) {
			t.Fatalf("snapshot %d: output %v, want %v", i, m.Output, ref.Output)
		}
	}
}

// TestRestoreRejectsMismatchedMachine: the restore guards that keep a
// checkpoint from silently resuming into a different simulation.
func TestRestoreRejectsMismatchedMachine(t *testing.T) {
	img := snapshotLoopImage(50_000)
	m := NewMachine(img, newStubRuntime(), DefaultOptions())
	s, err := m.Snapshot()
	if err != nil {
		t.Fatalf("boot snapshot: %v", err)
	}

	other := NewMachine(snapshotLoopImage(50_001), newStubRuntime(), DefaultOptions())
	if err := other.Restore(s); err == nil {
		t.Fatal("restore accepted a snapshot of a different image")
	}
	oopts := DefaultOptions()
	oopts.NCPU = s.NCPU + 1
	wider := NewMachine(img, newStubRuntime(), oopts)
	if err := wider.Restore(s); err == nil {
		t.Fatal("restore accepted an NCPU mismatch")
	}
}

// TestCheckpointLatchZeroAlloc is the zero-overhead-when-idle guard: an
// attached but never-armed checkpointer must not add allocations to the
// interpreter fast loop, and growing the loop 60× must not grow allocations
// with the latch in place.
func TestCheckpointLatchZeroAlloc(t *testing.T) {
	measure := func(n int64, withLatch bool) float64 {
		img := snapshotLoopImage(n)
		return testing.AllocsPerRun(3, func() {
			opts := DefaultOptions()
			if withLatch {
				opts.Checkpoint = &Checkpointer{} // present, never armed
			}
			m := NewMachine(img, newStubRuntime(), opts)
			if err := m.Run(50_000_000); err != nil {
				t.Fatal(err)
			}
			m.Release()
		})
	}
	small, big := measure(1_000, true), measure(61_000, true)
	if big > small+3 {
		t.Fatalf("idle checkpoint latch allocates: %.0f allocs at 1k iterations vs %.0f at 61k", small, big)
	}
	without := measure(61_000, false)
	if big > without+3 {
		t.Fatalf("attaching an idle checkpointer costs allocations: %.0f with vs %.0f without", big, without)
	}
}
