package hydra

import (
	"context"
	"errors"
	"testing"

	"jrpm/internal/isa"
	"jrpm/internal/obs"
	"jrpm/internal/tls"
)

// ledgerMachine builds a booted machine with the doctor's ledger attached.
func ledgerMachine(img *Image) (*Machine, *obs.Ledger) {
	opts := DefaultOptions()
	led := obs.NewLedger(opts.NCPU)
	opts.Ledger = led
	m := NewMachine(img, newStubRuntime(), opts)
	m.Boot()
	return m, led
}

// TestLedgerHotPathZeroAlloc is the observability-cost guarantee for the
// cycle ledger: the per-instruction charge mirror must not allocate, on
// either the serial path or the speculative run/wait paths.
func TestLedgerHotPathZeroAlloc(t *testing.T) {
	b := isa.NewBuilder()
	b.Emit(isa.Instr{Op: isa.HALT})
	img := image(&Method{Name: "main", Code: b.Finish(), FrameWords: 4})
	m, _ := ledgerMachine(img)

	// Serial path: speculation inactive, charges mirror into SerialInterp.
	if n := testing.AllocsPerRun(500, func() {
		m.TLS.ChargeAttemptDiag(1, tls.ChargeRun, 3)
	}); n != 0 {
		t.Fatalf("serial charge mirror allocates %.1f per op, want 0", n)
	}

	// Speculative path: run and wait charges mirror into the tentative
	// attempt accumulators.
	m.TLS.Start(1)
	if n := testing.AllocsPerRun(500, func() {
		m.TLS.ChargeAttemptDiag(1, tls.ChargeRun, 2)
		m.TLS.ChargeAttemptDiag(1, tls.ChargeWait, 1)
		m.TLS.ChargeAttemptDiag(1, tls.ChargeWaitOverflow, 1)
	}); n != 0 {
		t.Fatalf("speculative charge mirror allocates %.1f per op, want 0", n)
	}
}

// TestLedgerBudgetStopConserves: a run killed by the cycle budget leaves
// attempts in flight; Close must sweep them into Cancelled/InFlight so the
// conservation invariant still holds exactly.
func TestLedgerBudgetStopConserves(t *testing.T) {
	m, led := ledgerMachine(spinImage())
	err := m.Run(10_000)
	if !errors.Is(err, ErrCycleBudgetExceeded) {
		t.Fatalf("err = %v, want ErrCycleBudgetExceeded", err)
	}
	led.Close(m.Clock)
	snap := led.Snapshot()
	if cerr := snap.CheckConservation(); cerr != nil {
		t.Fatal(cerr)
	}
	if snap.WallCycles == 0 {
		t.Fatal("budget-stopped run recorded no wall cycles")
	}
}

// TestLedgerCancelledRunConserves: same invariant when the run dies from
// context cancellation mid-flight.
func TestLedgerCancelledRunConserves(t *testing.T) {
	cause := errors.New("client went away")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	opts := DefaultOptions()
	led := obs.NewLedger(opts.NCPU)
	opts.Ledger = led
	opts.Ctx = ctx
	m := NewMachine(spinImage(), newStubRuntime(), opts)
	m.Boot()
	err := m.Run(1 << 40)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	led.Close(m.Clock)
	if cerr := led.Snapshot().CheckConservation(); cerr != nil {
		t.Fatal(cerr)
	}
}
