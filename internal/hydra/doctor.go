package hydra

import (
	"fmt"

	"jrpm/internal/isa"
	"jrpm/internal/mem"
	"jrpm/internal/obs"
)

// symbolizeAddr classifies a violating store address for the doctor's
// ledger, resolving against the writing CPU's live frame pointer at
// broadcast time (the frame is gone by the time reports render, so the
// resolution must happen here). It allocates nothing; the string form is
// produced later by AnnotateLedger.
func (m *Machine) symbolizeAddr(cpu int, addr int64) obs.SiteKey {
	a := mem.Addr(addr)
	switch {
	case a < HeapBase:
		if a >= GlobalBase {
			return obs.SiteKey{Kind: obs.SiteStatic, Off: addr - int64(GlobalBase)}
		}
		return obs.SiteKey{Kind: obs.SiteHeap, Off: addr}
	case a >= StackRegionBase:
		c := m.CPUs[cpu]
		return obs.SiteKey{
			Kind:   obs.SiteFrame,
			Method: int32(c.MethodID),
			Off:    addr - c.Regs[isa.FP],
		}
	default:
		return obs.SiteKey{Kind: obs.SiteHeap, Off: addr}
	}
}

// AnnotateLedger resolves the symbol strings of a ledger snapshot against
// the compiled image's debug tables: static indices, method names, and the
// JIT frame-slot classification for stack-region sites. Must run while the
// image is still in scope (core calls it right after the run).
func AnnotateLedger(img *Image, snap *obs.LedgerSnapshot) {
	if snap == nil {
		return
	}
	for i := range snap.Loops {
		sites := snap.Loops[i].Sites
		for j := range sites {
			annotateSite(img, &sites[j])
		}
	}
}

func annotateSite(img *Image, s *obs.SiteStats) {
	switch s.Key.Kind {
	case obs.SiteStatic:
		s.Symbol = fmt.Sprintf("static[%d]", s.Key.Off)
	case obs.SiteHeap:
		s.Symbol = fmt.Sprintf("heap@%d", s.Key.Off)
	case obs.SiteGC:
		s.Symbol = "(gc quiesce)"
	case obs.SiteInjected:
		s.Symbol = "(injected fault)"
	case obs.SiteOther:
		s.Symbol = "(other sites)"
	case obs.SiteFrame:
		mi := int(s.Key.Method)
		if mi < 0 || mi >= len(img.Methods) {
			s.Symbol = fmt.Sprintf("frame+%d", s.Key.Off)
			return
		}
		meth := img.Methods[mi]
		off := s.Key.Off
		if off < 0 || off >= int64(len(meth.Frame)) {
			// The store targeted another frame on the same stack (a callee's
			// or caller's word) — report the raw offset.
			s.Symbol = fmt.Sprintf("%s frame%+d", meth.Name, off)
			return
		}
		slot := meth.Frame[off]
		s.Slot = slot.Kind
		s.SlotIndex = slot.Index
		switch slot.Kind {
		case obs.SlotLocal:
			s.Symbol = fmt.Sprintf("%s local#%d", meth.Name, slot.Index)
		case obs.SlotSaved:
			s.Symbol = fmt.Sprintf("%s saved-reg[%d]", meth.Name, slot.Index)
		case obs.SlotResetBase:
			s.Symbol = fmt.Sprintf("%s reset-base(local#%d)", meth.Name, slot.Index)
		case obs.SlotLock:
			s.Symbol = fmt.Sprintf("%s lock-word(local#%d)", meth.Name, slot.Index)
		case obs.SlotRed:
			s.Symbol = fmt.Sprintf("%s reduction-partial(local#%d)", meth.Name, slot.Index)
		case obs.SlotSpill:
			s.Symbol = fmt.Sprintf("%s spill+%d", meth.Name, off)
		default:
			s.Symbol = fmt.Sprintf("%s frame+%d", meth.Name, off)
		}
	}
}
