package hydra

import (
	"context"
	"errors"
	"testing"
	"time"

	"jrpm/internal/isa"
)

// spinImage is an unbounded busy loop: the machine runs until the cycle
// budget or the context stops it.
func spinImage() *Image {
	b := isa.NewBuilder()
	b.Li(isa.T0, 0)
	b.Label("spin")
	b.OpImm(isa.ADDI, isa.T0, isa.T0, 1)
	b.Jmp("spin")
	return image(&Method{Name: "main", Code: b.Finish(), FrameWords: 4})
}

// TestRunCancelDeadlineLatency is the acceptance bound for the cancellation
// stride: a run whose context deadline expires must return within 100ms of
// that deadline, even though the machine only polls every
// CancelCheckStride cycles.
func TestRunCancelDeadlineLatency(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	opts := DefaultOptions()
	opts.Ctx = ctx
	m := NewMachine(spinImage(), newStubRuntime(), opts)
	start := time.Now()
	err := m.Run(1 << 60)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, must wrap context.DeadlineExceeded", err)
	}
	if elapsed > 130*time.Millisecond {
		t.Fatalf("run returned %v after start; want within 100ms of the 30ms deadline", elapsed)
	}
}

// TestRunPreCancelledContext: a context that is already cancelled stops the
// run at the first stride check, and the error carries the cause.
func TestRunPreCancelledContext(t *testing.T) {
	cause := errors.New("client went away")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	opts := DefaultOptions()
	opts.Ctx = ctx
	m := NewMachine(spinImage(), newStubRuntime(), opts)
	err := m.Run(1 << 60)
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, cause) {
		t.Fatalf("err = %v, want ErrCancelled wrapping the cancel cause", err)
	}
	if m.Clock > 2*CancelCheckStride {
		t.Fatalf("machine ran %d cycles before noticing a pre-cancelled context", m.Clock)
	}
}

// TestRunUncancelledContextPreservesCycles: threading a live context through
// a run must not change a single cycle relative to a context-free run — the
// stride check is observation, not perturbation.
func TestRunUncancelledContextPreservesCycles(t *testing.T) {
	build := func(ctx context.Context) *Machine {
		b := isa.NewBuilder()
		b.Li(isa.T0, 0)
		b.Li(isa.T1, 0)
		b.Li(isa.T2, 200_000) // long enough to cross several stride checks
		b.Label("loop")
		b.Op3(isa.ADD, isa.T1, isa.T1, isa.T0)
		b.OpImm(isa.ADDI, isa.T0, isa.T0, 1)
		b.Br(isa.BLT, isa.T0, isa.T2, "loop")
		b.Emit(isa.Instr{Op: isa.IOPUT, Rs: isa.T1})
		b.Emit(isa.Instr{Op: isa.HALT})
		code := b.Finish()
		opts := DefaultOptions()
		opts.Ctx = ctx
		m := NewMachine(image(&Method{Name: "main", Code: code, FrameWords: 8}), newStubRuntime(), opts)
		return m
	}
	ma := build(nil)
	if err := ma.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	mb := build(context.Background())
	if err := mb.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if ma.Clock != mb.Clock || ma.Instructions != mb.Instructions {
		t.Fatalf("context changed timing: clock %d vs %d, instrs %d vs %d",
			ma.Clock, mb.Clock, mb.Instructions, mb.Instructions)
	}
	if len(ma.Output) != 1 || ma.Output[0] != mb.Output[0] {
		t.Fatalf("outputs differ: %v vs %v", ma.Output, mb.Output)
	}
}
