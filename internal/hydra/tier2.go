package hydra

import (
	"fmt"
	"sync"

	"jrpm/internal/isa"
	"jrpm/internal/tls"
)

// Tier-2 block engine.
//
// The cycle-accurate interpreter (exec.go) dispatches one instruction per
// Machine.exec call through a ~300-case switch; profiles show that dispatch —
// not simulation semantics — dominates every serial phase. The tier-2 engine
// removes it for the serial fast loop only: straight-line runs of fusable
// instructions (see isa.Traits) are decoded once into arrays of fused ops
// with direct handler function pointers, a per-block summed static cycle
// cost, and memory ops still routed through loadWord/storeWord so cache
// latency, tracer hooks, and fault semantics are untouched.
//
// Exactness contract: every observable of a run — Clock at every memory
// access, trap, fault, poll, and budget edge; Instructions; Stats.Serial;
// cache state; tracer timestamps; Output — is bit-identical to the
// interpreter. The engine guarantees this by:
//
//   - executing only while exactly one CPU runs and TLS is inactive (the
//     same predicate as the serial fast loop it replaces);
//   - setting m.Clock to the instruction's start cycle before each fused op,
//     so tracer hooks and trap paths observe interpreter-identical clocks;
//   - demoting to single interpreted steps whenever a block's worst-case
//     cycle span could cross the cycle budget or the cancellation poll
//     stride, so those edges fire at bit-identical cycles;
//   - diverting to the interpreter before any side effect when an op would
//     trap or data-fault, re-executing that instruction in exec() so the
//     entire disposition path (deferral, handler search, fault records) is
//     the interpreter's own.
//
// The engine is disabled (m.t2 == nil) whenever a flight recorder or fault
// injection plan is attached — both observe or perturb per-instruction
// events — and when Options.Tier2Off is set.

// DemoteReason classifies why the engine fell back to the interpreter for a
// step (or why speculation forced it out entirely).
type DemoteReason uint8

const (
	// DemoteSpec: an STL marker (start/EOI/shutdown/switch-in/switch-out).
	// Speculation boundaries always interpret, and while TLS is active the
	// engine does not run at all.
	DemoteSpec DemoteReason = iota
	// DemoteCall: CALL or RET (frame linkage, stack-overflow check).
	DemoteCall
	// DemoteGC: ALLOC or ALLOCARR — any allocation may quiesce for GC.
	DemoteGC
	// DemoteIO: IOPUT system call.
	DemoteIO
	// DemoteRuntime: monitors, HALT, or an op the compiler refused
	// (e.g. MFC2 with an unknown coprocessor register).
	DemoteRuntime
	// DemoteTrap: an op that would raise a software exception (divide by
	// zero, null check, bounds check, THROW).
	DemoteTrap
	// DemoteFault: an op whose effective address is out of range.
	DemoteFault
	// DemoteBudget: the block's worst-case span could cross the cycle
	// budget; stepped one instruction at a time instead.
	DemoteBudget
	// DemoteCancel: the block's worst-case span could cross the
	// cancellation poll stride.
	DemoteCancel
	// DemoteBadPC: pc outside the method (the interpreter owns the
	// badProgram failure path).
	DemoteBadPC

	// NumDemoteReasons sizes the per-reason counter array.
	NumDemoteReasons
)

// String returns the metric label for the reason.
func (d DemoteReason) String() string {
	switch d {
	case DemoteSpec:
		return "spec"
	case DemoteCall:
		return "call"
	case DemoteGC:
		return "gc"
	case DemoteIO:
		return "io"
	case DemoteRuntime:
		return "runtime"
	case DemoteTrap:
		return "trap"
	case DemoteFault:
		return "fault"
	case DemoteBudget:
		return "budget"
	case DemoteCancel:
		return "cancel"
	case DemoteBadPC:
		return "badpc"
	}
	return "unknown"
}

// TierStats counts tier-2 activity for one machine run.
type TierStats struct {
	Promotions     int64 // serial-phase entries into the block engine
	BlocksCompiled int64 // blocks decoded (boundary sentinels included)
	CacheHits      int64 // block-cache hits
	CacheMisses    int64 // block-cache misses (each triggers a compile)
	Linked         int64 // successor blocks reached through trace links
	InterpSteps    int64 // single instructions interpreted while promoted
	Demote         [NumDemoteReasons]int64
}

// t2fn executes one fused op. It returns the op's total cycle cost (static
// cost plus charged memory latency), or a negative divert code when the
// instruction must run in the interpreter instead (no architectural side
// effect has happened unless the code says otherwise).
type t2fn func(m *Machine, c *CPU, o *t2op) int64

const (
	// t2DivertTrap: the instruction will raise a software exception.
	// No side effects yet; re-execute it in exec().
	t2DivertTrap = -1
	// t2DivertFault: the instruction's effective address is out of range.
	// No side effects yet; re-execute it in exec().
	t2DivertFault = -2
	// t2DivertBounds: CHKIDX bounds failure. The length word was already
	// loaded (cache and tracer side effects happened, exactly as in the
	// interpreter), so the trap is taken in place rather than re-executed.
	t2DivertBounds = -3
)

// t2op is one fused dispatch unit: one ISA instruction, or a superinstruction
// pair folded into a single handler call. Field roles vary by handler; the
// compiler documents each pairing where it fuses.
type t2op struct {
	fn     t2fn
	imm    int64 // primary immediate
	imm2   int64 // second instruction's immediate (fused pairs)
	cost   int64 // summed static cost of the covered instructions
	pc     int32 // pc of the first covered instruction
	target int32 // branch target
	rd     uint8
	rs     uint8
	rt     uint8
	rd2    uint8 // second instruction's written/stored register (fused pairs)
	rs2    uint8 // second instruction's extra source (fused pairs)
	n      uint8 // ISA instructions covered (1 or 2)
	op     isa.Op
	op2    isa.Op // second fused opcode (NOP when none)
}

// t2block is a compiled straight-line block. A boundary sentinel (ops == nil)
// marks a pc whose instruction must always interpret; reason says why.
type t2block struct {
	ops    []t2op
	static int64 // summed static cost of all ops
	nmem   int32 // memory accesses (for the worst-case latency bound)
	entry  int32
	endPC  int32 // fall-through pc; -1 when the terminal op sets PC itself
	reason DemoteReason
	// Trace links: memoized successors so back-to-back blocks dispatch
	// without a cache probe. succPC is -1 until linked.
	succ   [2]*t2block
	succPC [2]int32
}

// t2method is the per-method block cache, generation-stamped so a pooled
// tier2 can be reused across machines without clearing.
type t2method struct {
	gen    uint64
	blocks []*t2block // indexed by entry pc
}

// tier2 is the per-machine block cache and compile arena. Blocks and op
// arrays are bump-allocated from chunked slabs whose storage survives in a
// sync.Pool across machines, so steady-state runs compile into warm memory
// and the dispatch loop allocates nothing.
type tier2 struct {
	gen       uint64
	methods   []t2method
	opChunks  [][]t2op
	opCur     int
	blkChunks [][]t2block
	blkCur    int
}

const (
	t2MaxOps   = 64 // dispatch units per block (bounds the worst-case span)
	t2OpChunk  = 4096
	t2BlkChunk = 512
)

var t2Pool = sync.Pool{New: func() any { return new(tier2) }}

// t2acquire takes a tier2 from the pool and starts a fresh generation: all
// cached blocks become stale by stamp, slab cursors rewind, and the warm
// chunk storage is reused in place.
func t2acquire() *tier2 {
	t := t2Pool.Get().(*tier2)
	t.gen++
	t.opCur, t.blkCur = 0, 0
	for i := range t.opChunks {
		t.opChunks[i] = t.opChunks[i][:0]
	}
	for i := range t.blkChunks {
		t.blkChunks[i] = t.blkChunks[i][:0]
	}
	return t
}

func (t *tier2) release() { t2Pool.Put(t) }

// allocBlock bump-allocates one block struct. Chunks are never reallocated
// once created, so returned pointers stay valid for the generation.
func (t *tier2) allocBlock() *t2block {
	for {
		if t.blkCur >= len(t.blkChunks) {
			t.blkChunks = append(t.blkChunks, make([]t2block, 0, t2BlkChunk))
		}
		chunk := t.blkChunks[t.blkCur]
		if len(chunk) < cap(chunk) {
			chunk = chunk[:len(chunk)+1]
			t.blkChunks[t.blkCur] = chunk
			b := &chunk[len(chunk)-1]
			*b = t2block{endPC: -1, succPC: [2]int32{-1, -1}}
			return b
		}
		t.blkCur++
	}
}

// persistOps copies a compiled op sequence into slab storage and returns the
// stable full-capacity slice.
func (t *tier2) persistOps(src []t2op) []t2op {
	need := len(src)
	for {
		if t.opCur >= len(t.opChunks) {
			t.opChunks = append(t.opChunks, make([]t2op, 0, t2OpChunk))
		}
		chunk := t.opChunks[t.opCur]
		off := len(chunk)
		if cap(chunk)-off >= need {
			chunk = chunk[:off+need]
			t.opChunks[t.opCur] = chunk
			dst := chunk[off : off+need : off+need]
			copy(dst, src)
			return dst
		}
		t.opCur++
	}
}

// lookup returns the block starting at the CPU's (MethodID, PC), compiling
// and caching it on first sight. Returns nil only for a pc outside the
// method's code.
func (t *tier2) lookup(m *Machine, c *CPU) *t2block {
	mid := c.MethodID
	if mid >= len(t.methods) {
		grown := make([]t2method, mid+1)
		copy(grown, t.methods)
		t.methods = grown
	}
	tm := &t.methods[mid]
	code := m.Image.Method(mid).Code
	if tm.gen != t.gen {
		tm.gen = t.gen
		if cap(tm.blocks) < len(code) {
			tm.blocks = make([]*t2block, len(code))
		} else {
			tm.blocks = tm.blocks[:len(code)]
			for i := range tm.blocks {
				tm.blocks[i] = nil
			}
		}
	}
	pc := c.PC
	if pc < 0 || pc >= len(tm.blocks) {
		return nil
	}
	if b := tm.blocks[pc]; b != nil {
		m.Tier.CacheHits++
		return b
	}
	m.Tier.CacheMisses++
	m.Tier.BlocksCompiled++
	b := t.compile(code, pc)
	tm.blocks[pc] = b
	return b
}

// t2Fusable reports whether the instruction may join a block. MFC2 is only
// fusable for the coprocessor registers the interpreter knows; an unknown
// index stays interpreted so badProgram fires exactly as before.
func t2Fusable(in *isa.Instr) bool {
	if !isa.Traits(in.Op).Has(isa.TraitFusable) {
		return false
	}
	if in.Op == isa.MFC2 && in.Imm != isa.CP2Iteration && in.Imm != isa.CP2CPUID {
		return false
	}
	return true
}

// boundaryReason maps a non-fusable opcode to its demotion bucket.
func boundaryReason(op isa.Op) DemoteReason {
	switch op {
	case isa.STLSTART, isa.STLEOI, isa.STLSHUTDOWN, isa.STLSWSTART, isa.STLSWEND:
		return DemoteSpec
	case isa.CALL, isa.RET:
		return DemoteCall
	case isa.ALLOC, isa.ALLOCARR:
		return DemoteGC
	case isa.IOPUT:
		return DemoteIO
	case isa.THROW:
		return DemoteTrap
	}
	return DemoteRuntime
}

// compile decodes the straight-line run starting at entry. A non-fusable
// first instruction yields a boundary sentinel; otherwise ops accumulate
// until a terminator, a boundary, or the block size cap.
func (t *tier2) compile(code isa.Code, entry int) *t2block {
	b := t.allocBlock()
	b.entry = int32(entry)
	if !t2Fusable(&code[entry]) {
		b.reason = boundaryReason(code[entry].Op)
		return b
	}
	var scratch [t2MaxOps]t2op
	ops := scratch[:0]
	pc := entry
	terminal := false
	for pc < len(code) && len(ops) < t2MaxOps && !terminal {
		in := &code[pc]
		if !t2Fusable(in) {
			break
		}
		var o t2op
		adv := 1
		if pc+1 < len(code) {
			adv = t2Fuse(in, &code[pc+1], &o)
		}
		if adv == 2 {
			o.pc = int32(pc)
		} else {
			o = t2Single(in, pc)
		}
		tr := isa.Traits(in.Op)
		if adv == 2 {
			tr |= isa.Traits(code[pc+1].Op)
		}
		if tr.Has(isa.TraitMem) {
			b.nmem++
		}
		b.static += o.cost
		ops = append(ops, o)
		pc += adv
		last := o.op
		if o.op2 != isa.NOP {
			last = o.op2
		}
		if last.IsBranch() || last == isa.J {
			terminal = true
		}
	}
	b.ops = t.persistOps(ops)
	if terminal {
		b.endPC = -1
	} else {
		b.endPC = int32(pc)
	}
	return b
}

// runTier2 is the tier-2 serial fast loop: same predicate, clock advance,
// budget, and cancellation semantics as the interpreter fast loop in Run,
// but dispatching whole blocks between checks when the worst-case span
// provably cannot cross a budget or poll edge.
func (m *Machine) runTier2(c *CPU, maxCycles int64) {
	t := m.t2
	var last *t2block
	if m.t2resume {
		// Resuming from a snapshot taken inside this loop: the promotion was
		// already counted before the snapshot, and last re-links the trace
		// predecessor so Linked counts continue exactly.
		m.t2resume = false
		last = m.t2resumeLast
		m.t2resumeLast = nil
	} else {
		m.Tier.Promotions++
	}
	for !m.halted && c.state == stateRunning && !m.TLS.Active() {
		if c.readyAt > m.Clock {
			m.Clock = c.readyAt
		}
		if m.Clock > maxCycles {
			m.fail(fmt.Errorf("%w: budget %d, clock %d", ErrCycleBudgetExceeded, maxCycles, m.Clock))
			return
		}
		if m.ctxDone != nil && m.Clock >= m.nextCtxCheck && m.pollCancel() {
			return
		}
		if m.ckpt != nil && m.Clock >= m.ckptNext {
			m.checkpointNow(true, last)
		}
		var b *t2block
		if last != nil {
			pc := int32(c.PC)
			if pc == last.succPC[0] {
				b = last.succ[0]
				m.Tier.Linked++
			} else if pc == last.succPC[1] {
				b = last.succ[1]
				m.Tier.Linked++
			}
		}
		if b == nil {
			b = t.lookup(m, c)
			if b != nil && b.ops != nil && last != nil {
				if last.succPC[0] < 0 {
					last.succPC[0], last.succ[0] = int32(c.PC), b
				} else if last.succPC[1] < 0 {
					last.succPC[1], last.succ[1] = int32(c.PC), b
				}
			}
		}
		last = nil
		if b == nil || b.ops == nil {
			// Boundary op (scheduler/runtime transition) or out-of-range pc:
			// one cycle-accurate interpreter step owns the transition.
			if b == nil {
				m.Tier.Demote[DemoteBadPC]++
			} else {
				m.Tier.Demote[b.reason]++
			}
			m.Tier.InterpSteps++
			m.exec(c)
			continue
		}
		// Worst case: every access misses to the slowest level. If the block
		// could cross the budget or the poll stride, single-step it so those
		// edges trigger at bit-identical cycles.
		worst := b.static + int64(b.nmem)*m.latMax
		if worst > maxCycles-m.Clock {
			m.Tier.Demote[DemoteBudget]++
			m.Tier.InterpSteps++
			m.exec(c)
			continue
		}
		if m.ctxDone != nil && worst > m.nextCtxCheck-m.Clock {
			m.Tier.Demote[DemoteCancel]++
			m.Tier.InterpSteps++
			m.exec(c)
			continue
		}
		if m.runBlock(c, b) {
			last = b
		}
	}
}

// runBlock executes one compiled block. Accounting is batched: the local
// clock advances per fused op (published to m.Clock before each handler so
// tracer hooks and trap paths observe exact cycles), and the instruction
// count and Stats.Serial charge land in one lump at the end — both are plain
// accumulators with no intermediate observers while TLS is inactive.
// Returns true when the block completed (its trace links are then valid).
func (m *Machine) runBlock(c *CPU, b *t2block) bool {
	clk := m.Clock
	start := clk
	done := 0
	ops := b.ops
	for i := range ops {
		o := &ops[i]
		m.Clock = clk
		n := o.fn(m, c, o)
		if n < 0 {
			// Divert: the instruction at o.pc (+ completed fused prefix)
			// must run in the interpreter. Settle the batch first so exec
			// sees interpreter-identical machine state.
			sub, subCyc := int(m.t2sub), m.t2cyc
			m.t2sub, m.t2cyc = 0, 0
			clk += subCyc
			m.Clock = clk
			m.Instructions += int64(done + sub)
			m.chargeSerial(c, clk-start)
			c.PC = int(o.pc) + sub
			if n == t2DivertBounds {
				// Bounds trap with the length load already performed: take
				// the trap in place (re-execution would double the load).
				m.Instructions++
				m.Tier.Demote[DemoteTrap]++
				m.trap(c, isa.ExArrayBounds, 0)
			} else {
				if n == t2DivertTrap {
					m.Tier.Demote[DemoteTrap]++
				} else {
					m.Tier.Demote[DemoteFault]++
				}
				m.Tier.InterpSteps++
				m.exec(c)
			}
			return false
		}
		clk += n
		done += int(o.n)
	}
	m.Instructions += int64(done)
	m.chargeSerial(c, clk-start)
	c.readyAt = clk
	if b.endPC >= 0 {
		c.PC = int(b.endPC)
	}
	return true
}

// chargeSerial records cycles against the serial accumulator, matching the
// per-instruction ChargeAttempt(ChargeRun) calls the interpreter makes while
// speculation is inactive.
func (m *Machine) chargeSerial(c *CPU, cycles int64) {
	if cycles > 0 {
		if m.led != nil {
			// Bracket the batched charge so the ledger splits serial cycles
			// into block-engine vs interpreter dispatch; demoted single steps
			// go through exec's ordinary charge path and stay interpreter.
			m.led.SetTier2Window(true)
			m.TLS.ChargeAttemptDiag(c.ID, tls.ChargeRun, cycles)
			m.led.SetTier2Window(false)
			return
		}
		m.TLS.ChargeAttempt(c.ID, tls.ChargeRun, cycles)
	}
}

// BlockInfo describes one tier-2 block for inspection (jrpm-dis -blocks).
type BlockInfo struct {
	EntryPC  int
	Len      int // ISA instructions covered
	Ops      int // fused dispatch units
	Cost     int64
	MemOps   int
	Boundary string   // non-empty for a boundary pc: the demotion bucket
	Fused    []string // one mnemonic per dispatch unit, e.g. "addi+lw"
}

// BlockLayout compiles the method's code linearly and reports the resulting
// block shapes. Layout is advisory: at run time blocks are compiled on
// demand at executed pcs, so a branch into the middle of a listed block
// simply starts another (overlapping) block there.
func BlockLayout(img *Image, methodID int) []BlockInfo {
	t := t2acquire()
	defer t.release()
	code := img.Method(methodID).Code
	var out []BlockInfo
	for pc := 0; pc < len(code); {
		b := t.compile(code, pc)
		info := BlockInfo{EntryPC: pc, Cost: b.static, MemOps: int(b.nmem)}
		if b.ops == nil {
			info.Len = 1
			info.Boundary = b.reason.String()
			pc++
		} else {
			info.Ops = len(b.ops)
			for i := range b.ops {
				o := &b.ops[i]
				info.Len += int(o.n)
				name := o.op.Name()
				if o.op2 != isa.NOP {
					name += "+" + o.op2.Name()
				}
				info.Fused = append(info.Fused, name)
			}
			next := int(b.endPC)
			if next < 0 {
				lastOp := &b.ops[len(b.ops)-1]
				next = int(lastOp.pc) + int(lastOp.n)
			}
			pc = next
		}
		out = append(out, info)
	}
	return out
}
