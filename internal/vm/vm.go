// Package vm implements the Java-like virtual machine runtime services for
// Jrpm: object and array allocation from free lists held in simulated
// memory, a stop-the-world mark-sweep garbage collector, and object
// monitors.
//
// Everything the paper's §5 discusses as a VM-level speculation concern is
// modelled structurally:
//
//   - The allocator free-list head is a real simulated-memory word, so
//     allocating on every speculative thread creates the serializing
//     dependency of §5.2. With Config.ParallelAlloc the VM switches to
//     per-CPU free lists during speculation (refilled in chunks, like
//     thread-local allocation buffers), removing the dependency.
//   - Object lock words live in the object header, so synchronized methods
//     create per-iteration lock-word traffic. With Config.ElideLocks the
//     re-implemented lock routine of §5.3 skips the traffic while
//     speculation is active (sequential ordering is guaranteed by TLS).
//
// The collector is stop-the-world (it only runs on the head thread or in
// serial execution); the paper's concurrent collector differs only in
// scheduling, which none of the reproduced results depend on.
package vm

import (
	"jrpm/internal/bytecode"
	"jrpm/internal/hydra"
	"jrpm/internal/mem"
)

// Config selects the VM modifications of §5.
type Config struct {
	ParallelAlloc bool // per-CPU speculative free lists (§5.2)
	ElideLocks    bool // speculation-aware object locks (§5.3)
	HeapWords     int  // heap size; 0 selects the default
	ChunkWords    int  // per-CPU free-list refill granularity
}

// DefaultConfig returns the VM configuration with both modifications on,
// matching the paper's final system.
func DefaultConfig() Config {
	return Config{ParallelAlloc: true, ElideLocks: true}
}

// Heap metadata layout, at the start of the heap region. The shared
// free-list head is one word; per-CPU heads follow.
const (
	metaShared = 0 // shared free-list head
	metaCPU0   = 1 // per-CPU free-list heads (one word per CPU)
	metaWords  = 16
)

// Free-list block layout: word 0 = size (total words), word 1 = next.
const (
	blkSize  = 0
	blkNext  = 1
	minBlock = 2
)

// ArrayClassID tags array headers in the class word.
const ArrayClassID = -1

// VM implements hydra.Runtime.
type VM struct {
	cfg     Config
	classes []*bytecode.Class

	heapBase  mem.Addr
	heapLimit mem.Addr

	// alloc registry: block address → total block words (including any
	// slack the allocator could not split off). The collector uses it for
	// exact reference identification and sweep. A block allocated by a
	// speculative thread that is later violated simply becomes unreachable
	// garbage, exactly as in the real system.
	blocks map[mem.Addr]int64

	// Statistics.
	Allocs     int64
	AllocWords int64
	GCs        int64
	LastLive   int64
	LastFreed  int64
}

// New builds a VM for the program's class table.
func New(p *bytecode.Program, cfg Config) *VM {
	if cfg.HeapWords == 0 {
		cfg.HeapWords = 1<<21 - int(hydra.HeapBase)
	}
	if cfg.ChunkWords == 0 {
		cfg.ChunkWords = 512
	}
	return &VM{
		cfg:       cfg,
		classes:   p.Classes,
		heapBase:  hydra.HeapBase,
		heapLimit: hydra.HeapBase + mem.Addr(cfg.HeapWords),
		blocks:    make(map[mem.Addr]int64),
	}
}

// Install writes the initial free list into the machine's memory. Call once
// before Machine.Run.
func (v *VM) Install(m *hydra.Machine) {
	first := v.heapBase + metaWords
	size := int64(v.heapLimit - first)
	m.RawWrite(v.heapBase+metaShared, int64(first))
	m.RawWrite(first+blkSize, size)
	m.RawWrite(first+blkNext, 0)
	for i := 0; i < len(m.CPUs); i++ {
		m.RawWrite(v.heapBase+metaCPU0+mem.Addr(i), 0)
	}
}

// HeapRange returns the heap bounds (used by the collector's root scan).
func (v *VM) HeapRange() (mem.Addr, mem.Addr) { return v.heapBase, v.heapLimit }

// Alloc allocates an instance of classID (hydra.Runtime).
func (v *VM) Alloc(m *hydra.Machine, cpu int, classID int64) (int64, bool) {
	words := int64(bytecode.ObjectHeaderWords + v.classes[classID].NumFields)
	ref, got, ok := v.allocate(m, cpu, words)
	if !ok {
		return 0, true
	}
	v.blocks[mem.Addr(ref)] = got
	m.RuntimeStore(cpu, mem.Addr(ref), classID, hydra.ClassAlloc)
	m.RuntimeStore(cpu, mem.Addr(ref)+1, 0, hydra.ClassAlloc) // lock word
	// Zero the fields and any carve slack: freed memory may hold stale
	// data, and the collector scans the whole registered block. The bulk
	// zeroing cost is folded into the ALLOC instruction latency rather
	// than charged per word.
	for i := int64(bytecode.ObjectHeaderWords); i < got; i++ {
		m.RawWrite(mem.Addr(ref)+mem.Addr(i), 0)
	}
	v.Allocs++
	v.AllocWords += words
	return ref, false
}

// AllocArray allocates an array of length words (hydra.Runtime).
func (v *VM) AllocArray(m *hydra.Machine, cpu int, length int64) (int64, bool) {
	words := int64(bytecode.ArrayHeaderWords) + length
	ref, got, ok := v.allocate(m, cpu, words)
	if !ok {
		return 0, true
	}
	v.blocks[mem.Addr(ref)] = got
	m.RuntimeStore(cpu, mem.Addr(ref), ArrayClassID, hydra.ClassAlloc)
	m.RuntimeStore(cpu, mem.Addr(ref)+1, 0, hydra.ClassAlloc)
	m.RuntimeStore(cpu, mem.Addr(ref)+2, length, hydra.ClassAlloc)
	// Elements plus carve slack, as in Alloc.
	for i := int64(bytecode.ArrayHeaderWords); i < got; i++ {
		m.RawWrite(mem.Addr(ref)+mem.Addr(i), 0)
	}
	v.Allocs++
	v.AllocWords += words
	return ref, false
}

// allocate carves words from a free list and returns the block address and
// the total words taken (possibly more than requested, when splitting would
// leave an unusably small remainder). During speculation with ParallelAlloc
// enabled, each CPU allocates from its private list, refilling it in chunks
// from the shared list when empty — the thread-local allocation buffers of
// §5.2.
func (v *VM) allocate(m *hydra.Machine, cpu int, words int64) (int64, int64, bool) {
	if words < minBlock {
		words = minBlock
	}
	if v.cfg.ParallelAlloc && m.SpecActive() {
		head := v.heapBase + metaCPU0 + mem.Addr(cpu)
		if ref, got, ok := v.carve(m, cpu, head, words); ok {
			return ref, got, true
		}
		// Refill: move a chunk from the shared list onto the private list.
		if !v.refill(m, cpu, head, words) {
			return 0, 0, false
		}
		return v.carve(m, cpu, head, words)
	}
	return v.carve(m, cpu, v.heapBase+metaShared, words)
}

// carve first-fit allocates from the list at headAddr.
func (v *VM) carve(m *hydra.Machine, cpu int, headAddr mem.Addr, words int64) (int64, int64, bool) {
	prev := mem.Addr(0)
	cur := m.RuntimeLoad(cpu, headAddr, hydra.ClassAlloc)
	for cur != 0 {
		size := m.RuntimeLoad(cpu, mem.Addr(cur)+blkSize, hydra.ClassAlloc)
		if size >= words {
			rem := size - words
			if rem >= minBlock {
				// Allocate the block's tail; keep the head on the list.
				m.RuntimeStore(cpu, mem.Addr(cur)+blkSize, rem, hydra.ClassAlloc)
				return cur + rem, words, true
			}
			// Take the whole block (including slack): unlink.
			next := m.RuntimeLoad(cpu, mem.Addr(cur)+blkNext, hydra.ClassAlloc)
			if prev == 0 {
				m.RuntimeStore(cpu, headAddr, next, hydra.ClassAlloc)
			} else {
				m.RuntimeStore(cpu, prev+blkNext, next, hydra.ClassAlloc)
			}
			return cur, size, true
		}
		prev = mem.Addr(cur)
		cur = m.RuntimeLoad(cpu, mem.Addr(cur)+blkNext, hydra.ClassAlloc)
	}
	return 0, 0, false
}

// refill moves one adequately sized block from the shared list to the
// private list at privHead.
func (v *VM) refill(m *hydra.Machine, cpu int, privHead mem.Addr, need int64) bool {
	want := need
	if c := int64(v.cfg.ChunkWords); c > want {
		want = c
	}
	blk, ok := v.carveBlock(m, cpu, v.heapBase+metaShared, want)
	if !ok {
		// Fall back to exactly what we need.
		blk, ok = v.carveBlock(m, cpu, v.heapBase+metaShared, need)
		if !ok {
			return false
		}
	}
	old := m.RuntimeLoad(cpu, privHead, hydra.ClassAlloc)
	m.RuntimeStore(cpu, mem.Addr(blk)+blkNext, old, hydra.ClassAlloc)
	m.RuntimeStore(cpu, privHead, blk, hydra.ClassAlloc)
	return true
}

// carveBlock removes a whole block of at least want words from a list and
// returns its address (the block keeps its size header).
func (v *VM) carveBlock(m *hydra.Machine, cpu int, headAddr mem.Addr, want int64) (int64, bool) {
	prev := mem.Addr(0)
	cur := m.RuntimeLoad(cpu, headAddr, hydra.ClassAlloc)
	for cur != 0 {
		size := m.RuntimeLoad(cpu, mem.Addr(cur)+blkSize, hydra.ClassAlloc)
		if size >= want {
			if size >= want+minBlock {
				// Split: leave the head, take the tail as the chunk.
				rem := size - want
				m.RuntimeStore(cpu, mem.Addr(cur)+blkSize, rem, hydra.ClassAlloc)
				chunk := cur + rem
				m.RuntimeStore(cpu, mem.Addr(chunk)+blkSize, want, hydra.ClassAlloc)
				m.RuntimeStore(cpu, mem.Addr(chunk)+blkNext, 0, hydra.ClassAlloc)
				return chunk, true
			}
			next := m.RuntimeLoad(cpu, mem.Addr(cur)+blkNext, hydra.ClassAlloc)
			if prev == 0 {
				m.RuntimeStore(cpu, headAddr, next, hydra.ClassAlloc)
			} else {
				m.RuntimeStore(cpu, prev+blkNext, next, hydra.ClassAlloc)
			}
			m.RuntimeStore(cpu, mem.Addr(cur)+blkNext, 0, hydra.ClassAlloc)
			return cur, true
		}
		prev = mem.Addr(cur)
		cur = m.RuntimeLoad(cpu, mem.Addr(cur)+blkNext, hydra.ClassAlloc)
	}
	return 0, false
}

// ZeroesHeap implements hydra.HeapZeroer: Alloc and AllocArray zero every
// word of every block they register (fields, elements, and carve slack), and
// the collector reads heap words only inside registered blocks or through
// the free-list headers it maintains. The machine may therefore recycle its
// simulated memory without re-zeroing the heap span.
func (v *VM) ZeroesHeap() bool { return true }

// MonitorEnter implements the synchronized lock (hydra.Runtime). The
// speculation-aware version elides lock-word traffic during speculation:
// TLS already guarantees the sequential ordering the lock would enforce.
func (v *VM) MonitorEnter(m *hydra.Machine, cpu int, ref int64) {
	if v.cfg.ElideLocks && m.SpecActive() {
		return
	}
	// Uncontended acquire: read, then set. (There is only one logical Java
	// thread; contention cannot occur.)
	m.RuntimeLoad(cpu, mem.Addr(ref)+1, hydra.ClassLock)
	m.RuntimeStore(cpu, mem.Addr(ref)+1, 1, hydra.ClassLock)
}

// MonitorExit releases an object monitor (hydra.Runtime).
func (v *VM) MonitorExit(m *hydra.Machine, cpu int, ref int64) {
	if v.cfg.ElideLocks && m.SpecActive() {
		return
	}
	m.RuntimeStore(cpu, mem.Addr(ref)+1, 0, hydra.ClassLock)
}

var _ hydra.Runtime = (*VM)(nil)
