package vm

import (
	"sort"

	"jrpm/internal/mem"
)

// BlockSpan is one allocated heap block: its address and total words
// (including carve slack), as registered in the VM's alloc registry.
type BlockSpan struct {
	Addr  mem.Addr
	Words int64
}

// State is the VM's Go-side snapshot. The allocator's free lists and all
// object data live entirely in simulated memory (carried by the machine's
// memory snapshot); only the alloc registry and statistics live host-side.
type State struct {
	Blocks     []BlockSpan // sorted by address
	Allocs     int64
	AllocWords int64
	GCs        int64
	LastLive   int64
	LastFreed  int64
}

// CaptureState copies the alloc registry (sorted by address for canonical
// encoding) and statistics.
func (v *VM) CaptureState() State {
	st := State{
		Allocs:     v.Allocs,
		AllocWords: v.AllocWords,
		GCs:        v.GCs,
		LastLive:   v.LastLive,
		LastFreed:  v.LastFreed,
	}
	st.Blocks = make([]BlockSpan, 0, len(v.blocks))
	for a, w := range v.blocks {
		st.Blocks = append(st.Blocks, BlockSpan{Addr: a, Words: w})
	}
	sort.Slice(st.Blocks, func(i, j int) bool { return st.Blocks[i].Addr < st.Blocks[j].Addr })
	return st
}

// RestoreState replaces the alloc registry and statistics with a captured
// State. The simulated-memory half (free lists, object data) must be
// restored separately via the machine's memory snapshot.
func (v *VM) RestoreState(st State) {
	v.blocks = make(map[mem.Addr]int64, len(st.Blocks))
	for _, b := range st.Blocks {
		v.blocks[b.Addr] = b.Words
	}
	v.Allocs = st.Allocs
	v.AllocWords = st.AllocWords
	v.GCs = st.GCs
	v.LastLive = st.LastLive
	v.LastFreed = st.LastFreed
}
