package vm

import (
	"testing"

	"jrpm/internal/bytecode"
	"jrpm/internal/hydra"
	"jrpm/internal/isa"
	"jrpm/internal/mem"
)

func testProgram() *bytecode.Program {
	return &bytecode.Program{
		Name: "t",
		Classes: []*bytecode.Class{
			{ID: 0, Name: "Pair", NumFields: 2},
			{ID: 1, Name: "Big", NumFields: 10},
		},
		Methods: []*bytecode.Method{{Name: "main", Code: []bytecode.Ins{{Op: bytecode.RETURN}}}},
	}
}

// haltImage is a minimal image so NewMachine has something to hold.
func haltImage() *hydra.Image {
	return &hydra.Image{
		Name:    "t",
		Methods: []*hydra.Method{{Name: "main", Code: isa.Code{{Op: isa.HALT}}, FrameWords: 4}},
		STLs:    map[int64]*hydra.STLDesc{},
	}
}

func newVMAndMachine(cfg Config) (*VM, *hydra.Machine) {
	v := New(testProgram(), cfg)
	m := hydra.NewMachine(haltImage(), v, hydra.DefaultOptions())
	m.Boot()
	v.Install(m)
	return v, m
}

func TestAllocWritesHeader(t *testing.T) {
	v, m := newVMAndMachine(DefaultConfig())
	ref, gc := v.Alloc(m, 0, 0)
	if gc {
		t.Fatal("fresh heap should not need GC")
	}
	if m.RawRead(mem.Addr(ref)) != 0 {
		t.Errorf("class word = %d", m.RawRead(mem.Addr(ref)))
	}
	if m.RawRead(mem.Addr(ref)+1) != 0 {
		t.Error("lock word should be clear")
	}
	if v.Allocs != 1 {
		t.Errorf("alloc count = %d", v.Allocs)
	}
}

func TestAllocArrayLengthStored(t *testing.T) {
	v, m := newVMAndMachine(DefaultConfig())
	ref, gc := v.AllocArray(m, 0, 17)
	if gc {
		t.Fatal("unexpected GC request")
	}
	if m.RawRead(mem.Addr(ref)) != ArrayClassID {
		t.Error("array tag missing")
	}
	if m.RawRead(mem.Addr(ref)+2) != 17 {
		t.Errorf("length = %d", m.RawRead(mem.Addr(ref)+2))
	}
}

func TestDistinctAllocations(t *testing.T) {
	v, m := newVMAndMachine(DefaultConfig())
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		ref, gc := v.Alloc(m, 0, 1)
		if gc {
			t.Fatal("heap exhausted unexpectedly")
		}
		if seen[ref] {
			t.Fatalf("address %d allocated twice", ref)
		}
		seen[ref] = true
	}
}

func TestHeapExhaustionRequestsGC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HeapWords = metaWords + 64 // tiny heap
	v, m := newVMAndMachine(cfg)
	sawGC := false
	for i := 0; i < 100; i++ {
		_, gc := v.Alloc(m, 0, 1) // Big-ish objects, 12 words each
		if gc {
			sawGC = true
			break
		}
	}
	if !sawGC {
		t.Fatal("tiny heap never requested GC")
	}
}

func TestGCRecoversGarbage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HeapWords = metaWords + 120
	v, m := newVMAndMachine(cfg)
	// Allocate until full; keep no references (registers are zero).
	for {
		if _, gc := v.Alloc(m, 0, 1); gc {
			break
		}
	}
	v.CollectGarbage(m, 0)
	if v.LastFreed == 0 {
		t.Fatal("collector freed nothing")
	}
	if v.LastLive != 0 {
		t.Errorf("live = %d, want 0 (no roots)", v.LastLive)
	}
	// Heap is usable again.
	if _, gc := v.Alloc(m, 0, 1); gc {
		t.Fatal("allocation still failing after GC")
	}
	if m.GCCycles == 0 {
		t.Error("GC cost not charged")
	}
}

func TestGCKeepsRootedObjects(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HeapWords = metaWords + 200
	v, m := newVMAndMachine(cfg)
	keep, _ := v.Alloc(m, 0, 0)
	m.CPUs[0].Regs[isa.S0] = keep // register root
	// Store a second object's ref into the first object's field.
	child, _ := v.Alloc(m, 0, 0)
	m.RawWrite(mem.Addr(keep)+2, child)
	// And one unreachable object.
	v.Alloc(m, 0, 0)
	v.CollectGarbage(m, 0)
	if v.LastLive != 2 {
		t.Fatalf("live = %d, want 2 (root + field-reachable)", v.LastLive)
	}
	if v.LastFreed != 1 {
		t.Errorf("freed = %d, want 1", v.LastFreed)
	}
	// The survivors' contents are intact.
	if m.RawRead(mem.Addr(keep)+2) != child {
		t.Error("survivor field corrupted")
	}
}

func TestGCCoalescesFreeSpans(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HeapWords = metaWords + 100
	v, m := newVMAndMachine(cfg)
	// Fragment the heap with small dead objects, then collect and allocate
	// something bigger than any single fragment.
	for {
		if _, gc := v.Alloc(m, 0, 0); gc { // 4-word objects
			break
		}
	}
	v.CollectGarbage(m, 0)
	if _, gc := v.Alloc(m, 0, 1); gc { // 12 words: needs coalesced space
		t.Fatal("coalescing failed: cannot allocate large object after GC")
	}
}

func TestStackRootsScanned(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HeapWords = metaWords + 100
	v, m := newVMAndMachine(cfg)
	ref, _ := v.Alloc(m, 0, 0)
	// Put the only reference into a live stack slot.
	sp := m.CPUs[0].Regs[isa.SP]
	m.RawWrite(mem.Addr(sp), ref)
	v.CollectGarbage(m, 0)
	if v.LastLive != 1 {
		t.Fatalf("stack-rooted object collected (live=%d)", v.LastLive)
	}
}

func TestMonitorLockWordTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ElideLocks = false
	v, m := newVMAndMachine(cfg)
	ref, _ := v.Alloc(m, 0, 0)
	v.MonitorEnter(m, 0, ref)
	if m.RawRead(mem.Addr(ref)+1) != 1 {
		t.Error("lock word not set")
	}
	v.MonitorExit(m, 0, ref)
	if m.RawRead(mem.Addr(ref)+1) != 0 {
		t.Error("lock word not cleared")
	}
}

func TestParallelAllocUsesPrivateLists(t *testing.T) {
	// With ParallelAlloc, speculative allocations by different CPUs must
	// not conflict on the shared free-list head. We approximate the check
	// structurally: allocations during an active STL come from chunked
	// private lists, so consecutive allocs by two CPUs return addresses
	// from disjoint chunks.
	v, m := newVMAndMachine(DefaultConfig())
	m.TLS.Start(1) // activate speculation directly for the allocator's benefit
	a0, gc0 := v.Alloc(m, 0, 0)
	a1, gc1 := v.Alloc(m, 1, 0)
	if gc0 || gc1 {
		t.Fatal("unexpected GC request")
	}
	if a0 == a1 {
		t.Fatal("both CPUs allocated the same block")
	}
	d := a0 - a1
	if d < 0 {
		d = -d
	}
	if d < 128 {
		t.Errorf("allocations suspiciously close (%d apart) for chunked private lists", d)
	}
}

func TestChunkRefillFallsBackToExactFit(t *testing.T) {
	// Shared list smaller than a chunk: the refill must fall back to
	// carving exactly what the allocation needs.
	cfg := DefaultConfig()
	cfg.HeapWords = metaWords + 40 // far below ChunkWords
	v, m := newVMAndMachine(cfg)
	m.TLS.Start(1)
	ref, gc := v.Alloc(m, 0, 0) // 4-word object
	if gc || ref == 0 {
		t.Fatalf("small-heap speculative alloc failed (gc=%v)", gc)
	}
}

func TestGCResetsPrivateLists(t *testing.T) {
	v, m := newVMAndMachine(DefaultConfig())
	m.TLS.Start(1)
	if _, gc := v.Alloc(m, 0, 0); gc {
		t.Fatal("alloc failed")
	}
	// End speculation so the collector may run; private chunk survives as
	// free space afterwards.
	m.TLS.Shutdown(0)
	v.CollectGarbage(m, 0)
	for i := range m.CPUs {
		if m.RawRead(v.heapBase+metaCPU0+mem.Addr(i)) != 0 {
			t.Fatalf("cpu %d private list not reset after GC", i)
		}
	}
	// And the space is reusable.
	if _, gc := v.Alloc(m, 0, 1); gc {
		t.Fatal("heap unusable after GC")
	}
}
