package vm

import (
	"sort"

	"jrpm/internal/hydra"
	"jrpm/internal/isa"
	"jrpm/internal/mem"
)

// CollectGarbage runs a stop-the-world mark-sweep collection
// (hydra.Runtime). The machine guarantees the caller is either executing
// serially or is the head thread with all younger speculation quiesced, so
// flat memory is architecturally consistent.
//
// Roots are every CPU's register file, the live stack region, and the
// static field area. Reference identification is exact: a root or heap word
// is a reference iff it equals the address of an allocated block (the
// allocation registry). Marked blocks are scanned conservatively over their
// whole body — field layouts contain only word values, so any word that
// matches an allocated block keeps it alive.
//
// The sweep rebuilds the shared free list from all unmarked blocks plus the
// surviving free spans, coalescing adjacent spans; the per-CPU speculative
// lists reset to empty and refill on demand.
func (v *VM) CollectGarbage(m *hydra.Machine, cpu int) {
	v.GCs++
	marked := make(map[mem.Addr]bool, len(v.blocks))

	var work []mem.Addr
	consider := func(w int64) {
		a := mem.Addr(w)
		if w <= 0 || a < v.heapBase || a >= v.heapLimit {
			return
		}
		if _, ok := v.blocks[a]; ok && !marked[a] {
			marked[a] = true
			work = append(work, a)
		}
	}

	// Roots: registers, stacks, statics.
	scanned := int64(0)
	lowSP := int64(hydra.StackTop)
	for _, c := range m.CPUs {
		for _, r := range c.Regs {
			consider(r)
		}
		scanned += 32
		if sp := c.Regs[isa.SP]; sp > int64(v.heapLimit) && sp < lowSP {
			lowSP = sp
		}
	}
	for a := mem.Addr(lowSP); a < hydra.StackTop; a++ {
		consider(m.RawRead(a))
		scanned++
	}
	for i := 0; i < m.Image.Statics; i++ {
		consider(m.RawRead(hydra.GlobalBase + mem.Addr(i)))
		scanned++
	}

	// Mark: transitively scan block bodies.
	for len(work) > 0 {
		a := work[len(work)-1]
		work = work[:len(work)-1]
		size := v.blocks[a]
		for off := int64(0); off < size; off++ {
			consider(m.RawRead(a + mem.Addr(off)))
		}
		scanned += size
	}

	// Collect surviving free spans from the shared and per-CPU lists.
	type span struct {
		addr mem.Addr
		size int64
	}
	var spans []span
	walk := func(headAddr mem.Addr) {
		cur := m.RawRead(headAddr)
		for cur != 0 {
			spans = append(spans, span{mem.Addr(cur), m.RawRead(mem.Addr(cur) + blkSize)})
			cur = m.RawRead(mem.Addr(cur) + blkNext)
		}
	}
	walk(v.heapBase + metaShared)
	for i := range m.CPUs {
		walk(v.heapBase + metaCPU0 + mem.Addr(i))
	}

	// Sweep: unmarked blocks become free spans.
	freed := int64(0)
	for a, size := range v.blocks {
		if !marked[a] {
			spans = append(spans, span{a, size})
			freed++
			delete(v.blocks, a)
		}
	}
	v.LastLive = int64(len(v.blocks))
	v.LastFreed = freed

	// Coalesce and rebuild the shared list (address order aids locality).
	sort.Slice(spans, func(i, j int) bool { return spans[i].addr < spans[j].addr })
	var merged []span
	for _, s := range spans {
		if n := len(merged); n > 0 && merged[n-1].addr+mem.Addr(merged[n-1].size) == s.addr {
			merged[n-1].size += s.size
		} else {
			merged = append(merged, s)
		}
	}
	prev := v.heapBase + metaShared
	for _, s := range merged {
		m.RawWrite(prev, int64(s.addr))
		m.RawWrite(s.addr+blkSize, s.size)
		prev = s.addr + blkNext
	}
	m.RawWrite(prev, 0)
	for i := range m.CPUs {
		m.RawWrite(v.heapBase+metaCPU0+mem.Addr(i), 0)
	}

	// Collector cost: root/heap scan plus per-object mark/sweep work.
	m.ChargeGC(cpu, 200+scanned/4+8*int64(len(marked))+4*freed)
}
