// Reproducer files: a divergence found by jrpm-fuzz (or the fuzz targets)
// is written to testdata/repros/ as a self-contained JSON document holding
// the program tree, the harness configuration, the verdict and the lowered
// assembly. Loading the file and calling Recheck replays the exact run —
// the tree is the source of truth; the assembly is included for humans.
package progen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Repro is one minimized divergence, as stored on disk.
type Repro struct {
	Seed       int64       `json:"seed"`
	Divergence string      `json:"divergence"`
	Detail     string      `json:"detail,omitempty"`
	Check      CheckConfig `json:"check"`

	// Sizes of the minimized program (bytecode instructions).
	TotalInstructions  int `json:"totalInstructions"`
	KernelInstructions int `json:"kernelInstructions"`

	ShrinkSteps  int `json:"shrinkSteps"`
	ShrinkChecks int `json:"shrinkChecks"`

	Prog *Prog  `json:"prog"`
	Asm  string `json:"asm"`
}

// NewRepro packages a shrink result for writing.
func NewRepro(sr *ShrinkResult, cc CheckConfig) *Repro {
	asm, _ := Asm(sr.Prog)
	return &Repro{
		Seed:               sr.Prog.Seed,
		Divergence:         sr.Verdict.Divergence,
		Detail:             sr.Verdict.Detail,
		Check:              cc,
		TotalInstructions:  sr.Total,
		KernelInstructions: sr.Kernel,
		ShrinkSteps:        sr.Steps,
		ShrinkChecks:       sr.Checks,
		Prog:               sr.Prog,
		Asm:                asm,
	}
}

// Filename returns the deterministic file name for this reproducer.
func (r *Repro) Filename() string {
	leg := r.Divergence
	if leg == "" {
		leg = "none"
	}
	return fmt.Sprintf("repro-seed%d-%s.json", r.Seed, leg)
}

// Write stores the reproducer under dir, creating it if needed, and returns
// the file path.
func (r *Repro) Write(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, r.Filename())
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadRepro reads a reproducer file.
func LoadRepro(path string) (*Repro, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := &Repro{}
	if err := json.Unmarshal(raw, r); err != nil {
		return nil, fmt.Errorf("progen: %s: %w", path, err)
	}
	if r.Prog == nil {
		return nil, fmt.Errorf("progen: %s: no program tree", path)
	}
	return r, nil
}

// Recheck replays the stored program under the stored harness
// configuration.
func (r *Repro) Recheck() *Verdict {
	return Check(r.Prog, r.Check)
}
