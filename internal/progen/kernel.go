package progen

import (
	"jrpm/internal/bytecode"
	"jrpm/internal/cfg"
)

// largestLoop returns the instruction count of the largest natural loop in
// main — the speculative kernel a reproducer actually exercises. Returns 0
// for a loop-free program.
func largestLoop(bp *bytecode.Program) int {
	g := cfg.Build(bp, bp.Methods[bp.Main])
	best := 0
	for _, l := range g.Loops {
		n := 0
		for b := range l.Blocks {
			blk := g.Blocks[b]
			n += blk.End - blk.Start
		}
		if n > best {
			best = n
		}
	}
	return best
}
