// The differential harness: one generated program, five independent
// executions, every pair of answers cross-checked.
//
// Legs, in order:
//
//  1. oracle    — the frontend AST interpreter, which shares nothing with
//     the bytecode/JIT/Hydra stack below it.
//  2. pipeline  — one core.Run: plain sequential VM, annotated profiling
//     run, and the TLS-speculative run. The harness checks oracle == seq,
//     seq == profile, seq == TLS (output and final statics), plus the
//     structural invariants below.
//  3. rerun     — the same core.Run again; the whole simulator is
//     deterministic, so outputs, statics, cycle counts and the
//     commit/violation/overflow counters must be bit-identical.
//  4. faults    — core.Run with a seed-derived faultinject plan. core's
//     post-commit oracle compares the speculative state against the clean
//     sequential run and fails with ErrOracleMismatch on divergence; the
//     harness treats any such error as a verdict, not a crash.
//  5. solo      — core.Run with a hair-trigger violation-storm guard
//     (decertify on the first bad window, effectively infinite backoff),
//     so any misbehaving STL executes sequentially. Output must still
//     equal the sequential run.
//
// Metamorphic invariants checked on the speculative phase:
//
//   - bucket sanity: every StateStats bucket ≥ 0, and machine time
//     (Stats.Total) ≤ NCPU × wall cycles;
//   - speculative cycles ≥ committed work: the wall clock is at least the
//     serial fraction (which runs on one CPU with no overlap);
//   - counters are non-negative (Commits, Violations, Overflows, Cycles).
package progen

import (
	"fmt"

	"jrpm/internal/core"
	"jrpm/internal/faultinject"
	"jrpm/internal/tls"
)

// CheckConfig selects harness legs and the machine shape.
type CheckConfig struct {
	NCPU      int   `json:"ncpu"`
	MaxCycles int64 `json:"maxCycles,omitempty"`

	// Rerun, Faults and Solo enable legs 3–5. The conformance suite runs
	// all of them; the shrinker usually narrows to the one that diverged.
	Rerun  bool `json:"rerun,omitempty"`
	Faults bool `json:"faults,omitempty"`
	Solo   bool `json:"solo,omitempty"`

	// Chaos disables the store buffer's word-valid bits in the system under
	// test (tls.Config.ChaosNoWordValid). This is the suite's self-test: a
	// chaos run MUST produce a divergence verdict, proving the harness can
	// detect a real forwarding bug.
	Chaos bool `json:"chaos,omitempty"`
}

// DefaultCheckConfig runs every leg on the paper's 4-CPU machine.
func DefaultCheckConfig() CheckConfig {
	return CheckConfig{NCPU: 4, Rerun: true, Faults: true, Solo: true}
}

// Verdict is the outcome of checking one program.
type Verdict struct {
	Seed       int64  `json:"seed"`
	Divergence string `json:"divergence"`       // "" = conformant; else the failing leg
	Detail     string `json:"detail,omitempty"` // human-readable diff summary
	Checks     int    `json:"checks"`           // comparisons performed

	// Counters from the primary speculative run, for reporting.
	Commits    int64 `json:"commits"`
	Violations int64 `json:"violations"`
	Overflows  int64 `json:"overflows"`
}

// Diverged reports whether any leg failed.
func (v *Verdict) Diverged() bool { return v.Divergence != "" }

func (v *Verdict) fail(leg, format string, a ...any) *Verdict {
	v.Divergence = leg
	v.Detail = fmt.Sprintf(format, a...)
	return v
}

// check performs one comparison, recording it.
func (v *Verdict) check(leg string, ok bool, format string, a ...any) bool {
	v.Checks++
	if !ok {
		v.fail(leg, format, a...)
	}
	return ok
}

// Check runs the differential harness over one program tree.
func Check(p *Prog, cc CheckConfig) *Verdict {
	v := &Verdict{Seed: p.Seed}
	if cc.NCPU <= 0 {
		cc.NCPU = 4
	}

	fp, bp, err := Lower(p)
	if err != nil {
		return v.fail("build", "lowering failed: %v", err)
	}

	// Leg 1: the independent AST-interpreter oracle.
	want, err := fp.Interpret(200_000_000)
	if err != nil {
		return v.fail("oracle", "interpreter failed: %v", err)
	}

	opts := baseOptions(cc)
	res, err := core.Run(bp, opts)
	if err != nil {
		return v.fail("pipeline", "core.Run failed: %v", err)
	}

	// Leg 2: oracle vs sequential VM, then sequential vs profiled vs TLS.
	if !v.check("seq-vs-oracle", equal64(want, res.Seq.Output),
		"oracle %v != seq %v", head(want), head(res.Seq.Output)) {
		return v
	}
	if !v.check("seq-vs-profile", equal64(res.Seq.Output, res.Profile.Output),
		"seq %v != profile %v", head(res.Seq.Output), head(res.Profile.Output)) {
		return v
	}
	if !v.check("seq-vs-tls", equal64(res.Seq.Output, res.TLS.Output),
		"seq %v != tls %v", head(res.Seq.Output), head(res.TLS.Output)) {
		return v
	}
	if !v.check("statics", equal64(res.Seq.Statics, res.TLS.Statics),
		"seq statics %v != tls statics %v", res.Seq.Statics, res.TLS.Statics) {
		return v
	}
	v.Commits = res.TLS.Commits
	v.Violations = res.TLS.Violations
	v.Overflows = res.TLS.Overflows
	if !invariants(v, &res.TLS, cc.NCPU) {
		return v
	}

	// Leg 3: rerun determinism — the simulator is a deterministic machine,
	// so every observable of a second identical run must match exactly.
	if cc.Rerun {
		res2, err := core.Run(bp, baseOptions(cc))
		if err != nil {
			return v.fail("rerun", "second run failed: %v", err)
		}
		ok := v.check("rerun-determinism",
			equal64(res.TLS.Output, res2.TLS.Output) &&
				equal64(res.TLS.Statics, res2.TLS.Statics) &&
				res.TLS.Cycles == res2.TLS.Cycles &&
				res.TLS.Commits == res2.TLS.Commits &&
				res.TLS.Violations == res2.TLS.Violations &&
				res.TLS.Overflows == res2.TLS.Overflows,
			"runs differ: cycles %d/%d commits %d/%d violations %d/%d overflows %d/%d",
			res.TLS.Cycles, res2.TLS.Cycles, res.TLS.Commits, res2.TLS.Commits,
			res.TLS.Violations, res2.TLS.Violations, res.TLS.Overflows, res2.TLS.Overflows)
		if !ok {
			return v
		}
	}

	// Leg 4: speculative run under a deterministic fault barrage. core's
	// own post-commit oracle reports divergence as ErrOracleMismatch.
	if cc.Faults {
		fopts := baseOptions(cc)
		fopts.Faults = FaultPlanFor(p.Seed)
		fres, err := core.Run(bp, fopts)
		v.Checks++
		if err != nil {
			return v.fail("faults-oracle", "faulted run: %v", err)
		}
		if !v.check("faults-output", equal64(res.Seq.Output, fres.TLS.Output),
			"seq %v != faulted tls %v", head(res.Seq.Output), head(fres.TLS.Output)) {
			return v
		}
	}

	// Leg 5: hair-trigger guard — any violation window decertifies the STL
	// and the loop runs solo (sequentially). Same answer required.
	if cc.Solo {
		sopts := baseOptions(cc)
		sopts.Guard = SoloGuardConfig()
		sres, err := core.Run(bp, sopts)
		if err != nil {
			return v.fail("solo-guard", "guarded run failed: %v", err)
		}
		if !v.check("solo-guard", equal64(res.Seq.Output, sres.TLS.Output) &&
			equal64(res.Seq.Statics, sres.TLS.Statics),
			"seq %v != solo %v", head(res.Seq.Output), head(sres.TLS.Output)) {
			return v
		}
	}
	return v
}

// baseOptions builds the core options for one leg.
func baseOptions(cc CheckConfig) core.Options {
	opts := core.DefaultOptions()
	opts.NCPU = cc.NCPU
	if cc.MaxCycles > 0 {
		opts.MaxCycles = cc.MaxCycles
	}
	if cc.Chaos {
		tcfg := tls.DefaultConfig(cc.NCPU)
		tcfg.ChaosNoWordValid = true
		opts.TLS = &tcfg
	}
	return opts
}

// FaultPlanFor derives the leg-4 fault plan from the program seed: modest
// rates on every run-time channel. The JIT channel stays at zero so the leg
// actually exercises speculative execution instead of falling back to the
// plain image.
func FaultPlanFor(seed int64) *faultinject.Plan {
	return &faultinject.Plan{
		Seed:     seed ^ 0x5eed,
		RAW:      0.01,
		Overflow: 0.005,
		Bus:      0.02,
		BusDelay: 9,
		Heap:     0.002,
	}
}

// SoloGuardConfig returns a guard that decertifies an STL on its first bad
// window and never re-probes within any realistic run. Ratios are tiny
// positives, not zero — NewGuard replaces non-positive fields with defaults.
func SoloGuardConfig() *tls.GuardConfig {
	return &tls.GuardConfig{
		Window:            2,
		BadViolationRatio: 1e-9,
		BadOverflowRatio:  1e-9,
		Decertify:         1,
		Backoff:           1 << 40,
		MaxBackoff:        1 << 40,
	}
}

// invariants checks the metamorphic properties of a speculative phase.
func invariants(v *Verdict, ph *core.Phase, ncpu int) bool {
	s := ph.Stats
	for _, b := range []struct {
		name string
		val  int64
	}{
		{"Serial", s.Serial}, {"RunUsed", s.RunUsed}, {"WaitUsed", s.WaitUsed},
		{"Overhead", s.Overhead}, {"RunViolated", s.RunViolated},
		{"WaitViolated", s.WaitViolated}, {"Commits", ph.Commits},
		{"Violations", ph.Violations}, {"Overflows", ph.Overflows},
		{"Cycles", ph.Cycles},
	} {
		if !v.check("invariant-nonneg", b.val >= 0, "%s = %d < 0", b.name, b.val) {
			return false
		}
	}
	// Machine time is bounded by NCPU × wall time.
	if !v.check("invariant-machine-time", s.Total() <= int64(ncpu)*ph.Cycles,
		"stats total %d > %d CPUs × %d cycles", s.Total(), ncpu, ph.Cycles) {
		return false
	}
	// The wall clock covers at least the serial portion (which runs on one
	// CPU with no overlap): speculative cycles ≥ committed serial work.
	if !v.check("invariant-serial-bound", s.Serial <= ph.Cycles,
		"serial work %d exceeds wall cycles %d", s.Serial, ph.Cycles) {
		return false
	}
	// Note violated work does NOT imply Violations > 0: an STL that exits
	// early (break) squashes its younger in-flight iterations, discarding
	// their cycles without a violation event — so no such check here.
	return true
}

func equal64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// head truncates an output stream for error messages.
func head(xs []int64) []int64 {
	if len(xs) > 8 {
		return xs[:8]
	}
	return xs
}
