package progen

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDeterministicGeneration pins the suite's foundation: the same seed
// must produce a byte-identical program, and the tree must survive its own
// JSON encoding unchanged (the shrinker and repro files depend on that).
func TestDeterministicGeneration(t *testing.T) {
	cfg := DefaultConfig()
	for seed := int64(1); seed <= 50; seed++ {
		a1, err := Asm(Generate(seed, cfg))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a2, _ := Asm(Generate(seed, cfg))
		if a1 != a2 {
			t.Fatalf("seed %d: two generations differ", seed)
		}
		// JSON round trip preserves the program exactly.
		raw, err := json.Marshal(Generate(seed, cfg))
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		back := &Prog{}
		if err := json.Unmarshal(raw, back); err != nil {
			t.Fatalf("seed %d: unmarshal: %v", seed, err)
		}
		a3, err := Asm(back)
		if err != nil {
			t.Fatalf("seed %d: lower after round trip: %v", seed, err)
		}
		if a3 != a1 {
			t.Fatalf("seed %d: JSON round trip changed the program", seed)
		}
	}
	if a1, _ := Asm(Generate(1, cfg)); a1 == mustAsm(t, Generate(2, cfg)) {
		t.Fatal("seeds 1 and 2 generated identical programs")
	}
}

func mustAsm(t *testing.T, p *Prog) string {
	t.Helper()
	a, err := Asm(p)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestGeneratorCoversShapes checks the statement grammar is actually
// exercised across a modest seed range — a silent bias collapse (e.g. every
// draw landing on SAssign) would hollow out the whole suite.
func TestGeneratorCoversShapes(t *testing.T) {
	seen := map[StmtKind]bool{}
	var walk func([]*Stmt)
	walk = func(ss []*Stmt) {
		for _, s := range ss {
			seen[s.Kind] = true
			walk(s.Body)
			walk(s.Else)
		}
	}
	for seed := int64(1); seed <= 200; seed++ {
		walk(Generate(seed, DefaultConfig()).Body)
	}
	for k := StmtKind(0); k < numStmtKinds; k++ {
		if !seen[k] {
			t.Errorf("statement kind %d never generated in 200 seeds", k)
		}
	}
}

// TestConformance is the standing differential gate: every seed must agree
// across the oracle, sequential, profiled, speculative, fault-injected and
// guard-demoted executions.
func TestConformance(t *testing.T) {
	n := int64(40)
	if testing.Short() {
		n = 8
	}
	cc := DefaultCheckConfig()
	for seed := int64(1); seed <= n; seed++ {
		v := Check(Generate(seed, DefaultConfig()), cc)
		if v.Diverged() {
			t.Fatalf("seed %d diverged on leg %q: %s", seed, v.Divergence, v.Detail)
		}
		if v.Checks == 0 {
			t.Fatalf("seed %d: no checks performed", seed)
		}
	}
}

// TestVerdictsDeterministic: checking the same seed twice yields identical
// verdicts (an acceptance criterion of the suite).
func TestVerdictsDeterministic(t *testing.T) {
	cc := DefaultCheckConfig()
	for seed := int64(3); seed <= 6; seed++ {
		p := Generate(seed, QuickConfig())
		v1, v2 := Check(p, cc), Check(p, cc)
		if *v1 != *v2 {
			t.Fatalf("seed %d: verdicts differ: %+v vs %+v", seed, v1, v2)
		}
	}
}

// TestChaosDetectedAndShrunk is the suite's self-test against a known
// injected bug: with the store buffer's word-valid bits disabled
// (tls.Config.ChaosNoWordValid), some seed must produce a detected
// divergence, and the shrinker must reduce it to a reproducer whose
// speculative kernel is at most 20 bytecode instructions.
func TestChaosDetectedAndShrunk(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking loop is slow")
	}
	cc := CheckConfig{NCPU: 4, Chaos: true}
	var prog *Prog
	var first *Verdict
	for seed := int64(1); seed <= 400; seed++ {
		p := Generate(seed, DefaultConfig())
		if v := Check(p, cc); v.Diverged() {
			prog, first = p, v
			break
		}
	}
	if prog == nil {
		t.Fatal("no seed in 1..400 exposed the disabled word-valid bits; the harness cannot detect a real forwarding bug")
	}
	t.Logf("seed %d diverged on %q: %s", prog.Seed, first.Divergence, first.Detail)

	sr := Shrink(prog, cc, 600)
	if !sr.Verdict.Diverged() {
		t.Fatal("shrinker lost the divergence")
	}
	t.Logf("shrunk in %d steps / %d checks: total=%d kernel=%d instructions",
		sr.Steps, sr.Checks, sr.Total, sr.Kernel)
	if sr.Kernel > 20 {
		t.Errorf("shrunk kernel is %d instructions, want <= 20", sr.Kernel)
	}

	// The reproducer round-trips through disk and still replays.
	r := NewRepro(sr, cc)
	dir := t.TempDir()
	path, err := r.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := back.Recheck(); !v.Diverged() {
		t.Fatal("loaded reproducer no longer diverges")
	}
	// And with the chaos hook off, the same program is clean — the
	// divergence is the injected bug, not a generator artifact.
	if v := Check(back.Prog, CheckConfig{NCPU: 4}); v.Diverged() {
		t.Fatalf("reproducer diverges even without chaos: %q %s", v.Divergence, v.Detail)
	}
}

// TestShrinkCleanProgramIsNoop: a conforming program shrinks to itself.
func TestShrinkCleanProgramIsNoop(t *testing.T) {
	p := Generate(7, QuickConfig())
	sr := Shrink(p, CheckConfig{NCPU: 4}, 50)
	if sr.Steps != 0 {
		t.Fatalf("shrinker took %d steps on a clean program", sr.Steps)
	}
	if sr.Verdict.Diverged() {
		t.Fatalf("clean program reported divergent: %q", sr.Verdict.Divergence)
	}
}

// TestReproCorpus replays every checked-in reproducer under its stored
// configuration and requires the recorded verdict to hold — divergent
// repros must still diverge (the injected bug they pin is still
// detectable), clean ones must stay clean.
func TestReproCorpus(t *testing.T) {
	files, _ := filepath.Glob(filepath.Join("testdata", "repros", "*.json"))
	if len(files) == 0 {
		t.Skip("no checked-in reproducers")
	}
	for _, f := range files {
		r, err := LoadRepro(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		v := r.Recheck()
		if want := r.Divergence != ""; v.Diverged() != want {
			t.Errorf("%s: recorded divergence %q, replay got %q (%s)",
				filepath.Base(f), r.Divergence, v.Divergence, v.Detail)
		}
	}
}

// TestLoweringTotality: the lowering must accept hostile trees the shrinker
// can produce — empty bodies, zero iterations, out-of-range selectors,
// missing operands.
func TestLoweringTotality(t *testing.T) {
	hostile := []*Prog{
		{Seed: 1, Locals: 1, Statics: 1, Arrays: 1, ArrayLen: 4,
			LocalInit: []int64{0}, StaticInit: []int64{0},
			Prefill: []bool{false}, PrefillMul: []int64{3},
			Probes: []Probe{{Kind: PLocal}}},
		{Seed: 2, Locals: 1, Statics: 1, Arrays: 1, ArrayLen: 4,
			LocalInit: []int64{1}, StaticInit: []int64{2},
			Prefill: []bool{true}, PrefillMul: []int64{5},
			Body: []*Stmt{
				{Kind: SLoop, Iters: 0},
				{Kind: SLoop, Iters: 1, Body: []*Stmt{{Kind: SAssign, Dst: 99, E: &Expr{Kind: ELocal, K: -7}}}},
				{Kind: SBreakIf, CondA: &Expr{Kind: ELoopVar, K: 5}, CondB: &Expr{Kind: EConst}},
				{Kind: SCallMix, Dst: 0},
				{Kind: STry, Arr: 42, K: 2, Idx: &Expr{Kind: EConst, K: -3}},
				{Kind: SArrStore, Arr: -1, Idx: &Expr{Kind: EStatic, K: -9}, E: nil},
			},
			Probes: []Probe{{Kind: PArrSum, K: 12}, {Kind: PArrElem, K: 0, Idx: -5}, {Kind: PStatic, K: 3}}},
	}
	for i, p := range hostile {
		if _, _, err := Lower(p); err != nil {
			t.Errorf("hostile tree %d failed to lower: %v", i, err)
			continue
		}
		if v := Check(p, CheckConfig{NCPU: 2}); v.Divergence == "build" || v.Divergence == "oracle" {
			t.Errorf("hostile tree %d: %q %s", i, v.Divergence, v.Detail)
		}
	}
}

// TestReproFileHygiene: generated repro filenames are deterministic and
// path-safe.
func TestReproFileHygiene(t *testing.T) {
	r := &Repro{Seed: 42, Divergence: "seq-vs-tls"}
	if got := r.Filename(); got != "repro-seed42-seq-vs-tls.json" {
		t.Fatalf("filename = %q", got)
	}
	if strings.ContainsAny(r.Filename(), " /\\") {
		t.Fatal("filename contains unsafe characters")
	}
	if _, err := LoadRepro(filepath.Join(os.TempDir(), "progen-definitely-missing.json")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

// TestMultilevelRebaseRegression pins the first real bug the suite found:
// seed -32 (quick size) builds an outer loop carrying a divided local
// through a Comm slot around a conditional inner loop that the analyzer
// pairs as a multilevel inner STL. The switch-in inductor rebase recorded
// the current outer iteration as the new base even though the saved home
// value was already post-increment, so after the switch back out the
// redeployed slaves ran one iteration ahead and the last outer iteration
// was silently skipped (seq carried 162→54→23→20, TLS stopped at 23).
// The fuzz corpus entry testdata/fuzz/FuzzDifferential/a6de00b730394b94
// replays the same seed through the native fuzz target.
func TestMultilevelRebaseRegression(t *testing.T) {
	p := Generate(-32, QuickConfig())
	if v := Check(p, DefaultCheckConfig()); v.Diverged() {
		t.Fatalf("seed -32 diverged on leg %q: %s", v.Divergence, v.Detail)
	}
}
