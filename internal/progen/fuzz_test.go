package progen

import (
	"os"
	"testing"
)

// FuzzDifferential is the native-fuzzing entry to the conformance suite:
// each input seed becomes a generated program checked across the oracle,
// sequential, profiled, speculative and rerun executions. Any divergence is
// a bug in the execution stack (or the suite) and fails the target; go's
// fuzzer then minimizes the *seed*, and the shrinker (see jrpm-fuzz or
// TestChaosDetectedAndShrunk) minimizes the *program*.
func FuzzDifferential(f *testing.F) {
	for seed := int64(1); seed <= 12; seed++ {
		f.Add(seed)
	}
	f.Add(int64(-1))
	f.Add(int64(1 << 40))
	// Seed -32 is a regression: it generates an outer loop carrying a
	// divided local through a Comm slot around a conditional multilevel
	// inner STL, which exposed an off-by-one in the switch-in inductor
	// rebase (one outer iteration was skipped after the switch back out).
	f.Add(int64(-32))
	cc := CheckConfig{NCPU: 4, Rerun: true}
	f.Fuzz(func(t *testing.T, seed int64) {
		p := Generate(seed, QuickConfig())
		v := Check(p, cc)
		if v.Diverged() {
			asm, _ := Asm(p)
			t.Fatalf("seed %d diverged on leg %q: %s\n%s", seed, v.Divergence, v.Detail, asm)
		}
	})
}

// TestWriteChaosReproCorpus regenerates the checked-in reproducer corpus
// under testdata/repros/. It only runs when PROGEN_WRITE_REPROS is set —
// the files are committed artifacts, and TestReproCorpus replays them on
// every test run.
func TestWriteChaosReproCorpus(t *testing.T) {
	if os.Getenv("PROGEN_WRITE_REPROS") == "" {
		t.Skip("set PROGEN_WRITE_REPROS=1 to regenerate the corpus")
	}
	cc := CheckConfig{NCPU: 4, Chaos: true}
	wrote := 0
	for seed := int64(1); seed <= 400 && wrote < 2; seed++ {
		p := Generate(seed, DefaultConfig())
		if !Check(p, cc).Diverged() {
			continue
		}
		sr := Shrink(p, cc, 600)
		if !sr.Verdict.Diverged() {
			continue
		}
		path, err := NewRepro(sr, cc).Write("testdata/repros")
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (total=%d kernel=%d)", path, sr.Total, sr.Kernel)
		wrote++
	}
	if wrote == 0 {
		t.Fatal("no chaos divergence found to write")
	}
}
