// Package progen is the differential speculation conformance suite's
// program generator: a seeded, fully deterministic source of well-formed
// Jrpm programs biased toward the paper's STL decomposition shapes — nested
// counted loops with loop-carried and loop-independent dependences, aliased
// array and static accesses, helper calls, early exits, reductions,
// synchronized blocks and exception handlers.
//
// Unlike internal/difftest (which generates straight into the frontend AST),
// progen keeps every generated program as an explicit, serializable tree
// (Prog). That representation is what makes the rest of the suite possible:
//
//   - the same seed always produces the same tree, and the tree lowers to a
//     byte-identical bytecode program (Asm), so run verdicts are reproducible;
//   - the delta-debugging shrinker (shrink.go) edits the tree directly and
//     re-checks after every edit, minimizing any divergent program to a
//     small reproducer;
//   - reproducers round-trip through JSON (repro.go), so a divergence found
//     by jrpm-fuzz is re-runnable forever from testdata/repros/.
//
// The differential harness itself lives in harness.go: it runs each program
// through the AST interpreter oracle, the sequential VM, the speculative
// Hydra pipeline, a fault-injected speculative run and a guard-demoted solo
// run, and cross-checks outputs, final statics and metamorphic invariants.
package progen

import "fmt"

// Config bounds generation. All sizes are upper bounds; the generator draws
// actual sizes per seed.
type Config struct {
	Units        int   // top-level loops in main
	MaxBodyStmts int   // statements per loop body
	MaxDepth     int   // loop nesting depth (1 = no nesting)
	MaxExprDepth int   // expression tree depth
	Locals       int   // scalar locals
	Statics      int   // static field words
	Arrays       int   // arrays
	ArrayLen     int64 // words per array
	LoopIters    int64 // nominal iterations per loop
}

// DefaultConfig produces programs in the few-hundred-thousand simulated
// cycle range — large enough for the analyzer to select STLs, small enough
// to check thousands of seeds.
func DefaultConfig() Config {
	return Config{
		Units:        3,
		MaxBodyStmts: 5,
		MaxDepth:     2,
		MaxExprDepth: 3,
		Locals:       5,
		Statics:      3,
		Arrays:       2,
		ArrayLen:     48,
		LoopIters:    40,
	}
}

// QuickConfig is the small profile used by go test fuzz targets and the CI
// smoke job, where per-seed latency matters more than program richness.
func QuickConfig() Config {
	c := DefaultConfig()
	c.Units = 2
	c.MaxBodyStmts = 4
	c.ArrayLen = 24
	c.LoopIters = 24
	return c
}

// StressConfig is the large profile for long jrpm-fuzz soaks.
func StressConfig() Config {
	c := DefaultConfig()
	c.Units = 4
	c.MaxBodyStmts = 7
	c.MaxDepth = 3
	c.ArrayLen = 96
	c.LoopIters = 72
	return c
}

// ConfigByName maps the jrpm-fuzz -size flag to a profile.
func ConfigByName(name string) (Config, error) {
	switch name {
	case "quick":
		return QuickConfig(), nil
	case "small", "default":
		return DefaultConfig(), nil
	case "stress", "large":
		return StressConfig(), nil
	}
	return Config{}, fmt.Errorf("progen: unknown size %q (want quick, small, stress or large)", name)
}

// StmtKind enumerates statement shapes. The shapes mirror the dependence
// classes of the paper's §4.2: independent recomputes, reductions, carried
// chains, memory-carried array traffic, shared statics, calls, conditionals,
// nested loops, early exits, synchronized stores and try/catch.
type StmtKind int

// Statement kinds.
const (
	SAssign     StmtKind = iota // local[Dst] = E
	SReduce                     // local[Dst] += E (associative reduction shape)
	SCarry                      // local[Dst] = (local[Dst]*K + E) mod M
	SArrStore                   // array[Arr][reduce(Idx)] = E
	SStatStore                  // static[Dst] = E
	SCallMix                    // local[Dst] = mix(E, E2)
	SFloat                      // local[Dst] = int(float(E & 0xfff) * K)
	SIf                         // if cond { Body } else { Else }
	SLoop                       // for fresh var in [0, Iters) { Body }
	SBreakIf                    // if cond { break }    (early exit)
	SContinueIf                 // if cond { continue }
	SSync                       // synchronized(mon) { array[Arr][reduce(Idx)] = E }
	STry                        // try { local[Dst] = array[Arr][Idx - K] } catch { local[Dst] = -1 }
	numStmtKinds
)

// CondKind enumerates comparison shapes for SIf/SBreakIf/SContinueIf.
type CondKind int

// Condition kinds over (CondA, CondB).
const (
	CLt     CondKind = iota // A < B
	CGe                     // A >= B
	CEqMod3                 // (A & 0xffff) % 3 == 0
	CAndNe                  // A <= B && A != 7
	CEqK                    // A == B (used for deterministic early exits)
	numCondKinds
)

// Stmt is one statement node. Unused fields are zero; the JSON encoding
// omits them so reproducers stay small.
type Stmt struct {
	Kind  StmtKind `json:"k"`
	Dst   int      `json:"d,omitempty"`  // local or static index (mod-mapped)
	Arr   int      `json:"a,omitempty"`  // array selector (mod-mapped)
	K     int64    `json:"c,omitempty"`  // constant (carry multiplier, float scale, try offset)
	M     int64    `json:"m,omitempty"`  // constant (carry modulus)
	Iters int64    `json:"n,omitempty"`  // SLoop iteration count
	Cond  CondKind `json:"q,omitempty"`  // condition shape
	CondA *Expr    `json:"ca,omitempty"` // condition operands
	CondB *Expr    `json:"cb,omitempty"`
	Idx   *Expr    `json:"i,omitempty"` // array index expression
	E     *Expr    `json:"e,omitempty"` // value expression
	E2    *Expr    `json:"f,omitempty"`
	Body  []*Stmt  `json:"b,omitempty"`
	Else  []*Stmt  `json:"el,omitempty"`
}

// ExprKind enumerates expression nodes.
type ExprKind int

// Expression kinds. Leaves first, then binary operators (A, B operands).
const (
	EConst   ExprKind = iota // K
	ELocal                   // local[K mod Locals]
	ELoopVar                 // enclosing loop variable selected by K (innermost = 0)
	EStatic                  // static[K mod Statics]
	EArrLoad                 // array[K mod Arrays][reduce(A)]
	EAdd
	ESub
	EMul // (A & 0xffff) * (B & 0xff): overflow-masked
	EDiv // A / ((B & 15) + 1): divisor forced nonzero
	EXor
	EAnd
	EShr // A >> (B & 7)
	EMax
	numExprKinds
)

// Expr is one expression node.
type Expr struct {
	Kind ExprKind `json:"k"`
	K    int64    `json:"c,omitempty"`
	A    *Expr    `json:"a,omitempty"`
	B    *Expr    `json:"b,omitempty"`
}

// ProbeKind enumerates epilogue output probes.
type ProbeKind int

// Probe kinds. PArrSum prints a multiplicative checksum over a whole array
// (heap state surfaced through the output stream); PArrElem prints a single
// element — the shrinker converts sums to elements to pare reproducers down.
const (
	PLocal ProbeKind = iota
	PStatic
	PArrSum
	PArrElem
)

// Probe is one epilogue print.
type Probe struct {
	Kind ProbeKind `json:"k"`
	K    int       `json:"i"`           // local / static / array index
	Idx  int64     `json:"x,omitempty"` // PArrElem element index
}

// Prog is a complete generated program: prologue sizes and initial values,
// the statement tree of main, and the epilogue probes. Every field is
// serializable; Lower turns it into a frontend AST and verified bytecode.
type Prog struct {
	Seed     int64  `json:"seed"`
	Name     string `json:"name"`
	Locals   int    `json:"locals"`
	Statics  int    `json:"statics"`
	Arrays   int    `json:"arrays"`
	ArrayLen int64  `json:"arrayLen"`

	LocalInit  []int64 `json:"localInit"`
	StaticInit []int64 `json:"staticInit"`
	// Prefill[k] fills array k with (j*PrefillMul[k])%1009 in the prologue;
	// false leaves it zeroed (the shrinker's first win).
	Prefill    []bool  `json:"prefill"`
	PrefillMul []int64 `json:"prefillMul"`

	HelperK1 int64 `json:"helperK1"`
	HelperK2 int64 `json:"helperK2"`

	Body   []*Stmt `json:"body"`
	Probes []Probe `json:"probes"`
}

// rng is a splitmix64 sequence: deterministic across hosts and Go versions
// by construction (unlike math/rand, whose stability is only conventional).
type rng struct{ s uint64 }

func newRng(seed int64) *rng {
	return &rng{s: uint64(seed)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03}
}

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	x := r.s
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// intn returns a uniform draw in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// i63 returns a uniform draw in [0, n).
func (r *rng) i63(n int64) int64 { return int64(r.next() % uint64(n)) }

// gen carries generation state.
type gen struct {
	r   *rng
	cfg Config
	p   *Prog
}

// Generate builds the program tree for a seed. The same (seed, cfg) always
// yields an identical tree, hence identical bytecode and identical verdicts.
func Generate(seed int64, cfg Config) *Prog {
	g := &gen{r: newRng(seed), cfg: cfg}
	p := &Prog{
		Seed:     seed,
		Name:     "progen",
		Locals:   2 + g.r.intn(cfg.Locals-1),
		Statics:  1 + g.r.intn(cfg.Statics),
		Arrays:   1 + g.r.intn(cfg.Arrays),
		ArrayLen: cfg.ArrayLen,
		HelperK1: g.r.i63(97) + 3,
		HelperK2: g.r.i63(31) + 1,
	}
	g.p = p
	for i := 0; i < p.Locals; i++ {
		p.LocalInit = append(p.LocalInit, g.r.i63(1000)-500)
	}
	for i := 0; i < p.Statics; i++ {
		p.StaticInit = append(p.StaticInit, g.r.i63(1000)-500)
	}
	for i := 0; i < p.Arrays; i++ {
		p.Prefill = append(p.Prefill, true)
		p.PrefillMul = append(p.PrefillMul, g.r.i63(97)+3)
	}
	units := 1 + g.r.intn(cfg.Units)
	for u := 0; u < units; u++ {
		p.Body = append(p.Body, g.loop(1))
	}
	// Default epilogue: checksum everything — locals, statics, and whole
	// arrays — so silent state corruption anywhere surfaces in the output.
	for i := 0; i < p.Locals; i++ {
		p.Probes = append(p.Probes, Probe{Kind: PLocal, K: i})
	}
	for i := 0; i < p.Statics; i++ {
		p.Probes = append(p.Probes, Probe{Kind: PStatic, K: i})
	}
	for i := 0; i < p.Arrays; i++ {
		p.Probes = append(p.Probes, Probe{Kind: PArrSum, K: i})
	}
	return p
}

// loop generates one counted loop at the given nesting depth.
func (g *gen) loop(depth int) *Stmt {
	s := &Stmt{
		Kind:  SLoop,
		Iters: g.cfg.LoopIters/2 + g.r.i63(g.cfg.LoopIters),
	}
	n := 1 + g.r.intn(g.cfg.MaxBodyStmts)
	for i := 0; i < n; i++ {
		s.Body = append(s.Body, g.stmt(depth))
	}
	// Bias: a third of loops get a nested inner loop (multilevel shapes).
	if depth < g.cfg.MaxDepth && g.r.intn(3) == 0 {
		inner := &Stmt{Kind: SLoop, Iters: 4 + g.r.i63(8)}
		inner.Body = append(inner.Body, g.stmt(depth+1))
		s.Body = append(s.Body, inner)
	}
	// Bias: one loop in six exits early at a deterministic iteration,
	// exercising STL shutdown from a non-final iteration.
	if g.r.intn(6) == 0 {
		s.Body = append(s.Body, &Stmt{
			Kind: SBreakIf, Cond: CEqK,
			CondA: &Expr{Kind: ELoopVar},
			CondB: &Expr{Kind: EConst, K: s.Iters/2 + g.r.i63(s.Iters/2+1)},
		})
	}
	return s
}

// stmt generates one loop-body statement, weighted toward the dependence
// shapes that stress speculation hardest.
func (g *gen) stmt(depth int) *Stmt {
	switch g.r.intn(12) {
	case 0, 1: // array store — the main memory-dependence source
		return &Stmt{Kind: SArrStore, Arr: g.r.intn(g.p.Arrays),
			Idx: g.index(), E: g.expr(g.cfg.MaxExprDepth)}
	case 2: // reduction
		return &Stmt{Kind: SReduce, Dst: g.r.intn(g.p.Locals), E: g.expr(2)}
	case 3: // carried chain (unoptimizable register dependence)
		return &Stmt{Kind: SCarry, Dst: g.r.intn(g.p.Locals),
			K: g.r.i63(29) + 3, M: 9973, E: g.expr(1)}
	case 4: // shared static store — a dependence every CPU sees
		return &Stmt{Kind: SStatStore, Dst: g.r.intn(g.p.Statics), E: g.expr(2)}
	case 5: // helper call
		return &Stmt{Kind: SCallMix, Dst: g.r.intn(g.p.Locals),
			E: g.expr(1), E2: g.expr(1)}
	case 6: // conditional update
		s := &Stmt{Kind: SIf}
		s.Cond, s.CondA, s.CondB = g.cond()
		s.Body = []*Stmt{{Kind: SAssign, Dst: g.r.intn(g.p.Locals), E: g.expr(2)}}
		if g.r.intn(2) == 0 {
			s.Else = []*Stmt{{Kind: SAssign, Dst: g.r.intn(g.p.Locals), E: g.expr(1)}}
		}
		return s
	case 7: // float round trip (bit-exact in interpreter and VM)
		return &Stmt{Kind: SFloat, Dst: g.r.intn(g.p.Locals),
			K: g.r.i63(7) + 1, E: g.expr(1)}
	case 8: // synchronized array update (lock elision under speculation)
		return &Stmt{Kind: SSync, Arr: g.r.intn(g.p.Arrays),
			Idx: g.index(), E: g.expr(2)}
	case 9: // try/catch around a possibly out-of-range access
		return &Stmt{Kind: STry, Dst: g.r.intn(g.p.Locals),
			Arr: g.r.intn(g.p.Arrays), K: g.r.i63(3), Idx: g.index()}
	case 10: // rare continue (skips the rest of the iteration)
		if depth >= 1 && g.r.intn(2) == 0 {
			c, a, b := g.cond()
			return &Stmt{Kind: SContinueIf, Cond: c, CondA: a, CondB: b}
		}
		fallthrough
	default: // plain recompute
		return &Stmt{Kind: SAssign, Dst: g.r.intn(g.p.Locals),
			E: g.expr(g.cfg.MaxExprDepth)}
	}
}

// index generates an array index expression. The draw is biased toward
// shapes that make iterations share cache lines or whole words — the access
// patterns that make word-valid bits, forwarding and violation broadcast
// earn their keep.
func (g *gen) index() *Expr {
	iv := &Expr{Kind: ELoopVar}
	switch g.r.intn(5) {
	case 0: // sequential: distinct word per iteration (loop-independent)
		return &Expr{Kind: EAdd, A: iv, B: &Expr{Kind: EConst, K: g.r.i63(8)}}
	case 1: // strided: neighbouring iterations share a 4-word line
		return &Expr{Kind: EMul, A: iv, B: &Expr{Kind: EConst, K: g.r.i63(3) + 2}}
	case 2: // neighbour: iteration i touches the word iteration i±d wrote
		return &Expr{Kind: ESub, A: iv, B: &Expr{Kind: EConst, K: g.r.i63(3) + 1}}
	case 3: // single hot word: every iteration collides
		return &Expr{Kind: EConst, K: g.r.i63(g.p.ArrayLen)}
	default: // arbitrary expression
		return g.expr(2)
	}
}

func (g *gen) cond() (CondKind, *Expr, *Expr) {
	k := CondKind(g.r.intn(int(numCondKinds) - 1)) // CEqK reserved for breaks
	return k, g.expr(1), g.expr(1)
}

// expr generates an integer expression over locals, loop variables, statics,
// array reads and constants.
func (g *gen) expr(depth int) *Expr {
	if depth <= 0 || g.r.intn(3) == 0 {
		switch g.r.intn(6) {
		case 0:
			return &Expr{Kind: EConst, K: g.r.i63(200) - 100}
		case 1:
			return &Expr{Kind: ELoopVar, K: int64(g.r.intn(2))}
		case 2:
			return &Expr{Kind: EStatic, K: int64(g.r.intn(g.p.Statics))}
		case 3:
			return &Expr{Kind: EArrLoad, K: int64(g.r.intn(g.p.Arrays)), A: g.index()}
		default:
			return &Expr{Kind: ELocal, K: int64(g.r.intn(g.p.Locals))}
		}
	}
	k := ExprKind(int(EAdd) + g.r.intn(int(numExprKinds-EAdd)))
	return &Expr{Kind: k, A: g.expr(depth - 1), B: g.expr(depth - 1)}
}
