package progen

import (
	"testing"

	"jrpm/internal/core"
)

// TestLedgerConservationProperty is the doctor's property test: over a range
// of generated programs and pipeline configurations, every phase's cycle
// ledger must conserve exactly — Σ buckets == wall cycles × CPUs — with
// nothing left in flight on a cleanly completed run. Legs cover the plain
// speculative pipeline, a hair-trigger guard that demotes STLs to solo
// execution, and the interpreter-only tier (no tier-2 block engine).
// Cancelled and budget-stopped runs are covered at the hydra level
// (internal/hydra ledger tests), since core discards phases on error.
func TestLedgerConservationProperty(t *testing.T) {
	cfg := DefaultConfig()
	legs := []struct {
		name string
		mod  func(*core.Options)
	}{
		{"tls", func(*core.Options) {}},
		{"solo-guard", func(o *core.Options) { o.Guard = SoloGuardConfig() }},
		{"tier-off", func(o *core.Options) { o.Tier2Off = true }},
	}
	for seed := int64(1); seed <= 15; seed++ {
		p := Generate(seed, cfg)
		_, bp, err := Lower(p)
		if err != nil {
			t.Fatalf("seed %d: lowering failed: %v", seed, err)
		}
		for _, leg := range legs {
			opts := core.DefaultOptions()
			opts.NCPU = 4
			opts.Diagnose = true
			leg.mod(&opts)
			res, err := core.Run(bp, opts)
			if err != nil {
				t.Fatalf("seed %d/%s: core.Run failed: %v", seed, leg.name, err)
			}
			for phase, ph := range map[string]*core.Phase{
				"seq": &res.Seq, "profile": &res.Profile, "tls": &res.TLS,
			} {
				led := ph.Ledger
				if led == nil {
					t.Fatalf("seed %d/%s/%s: no ledger snapshot", seed, leg.name, phase)
				}
				if cerr := led.CheckConservation(); cerr != nil {
					t.Errorf("seed %d/%s/%s: %v", seed, leg.name, phase, cerr)
				}
				if led.Machine.InFlight != 0 {
					t.Errorf("seed %d/%s/%s: clean run left %d cycles in flight",
						seed, leg.name, phase, led.Machine.InFlight)
				}
				if led.WallCycles != ph.Cycles {
					t.Errorf("seed %d/%s/%s: ledger wall %d != phase cycles %d",
						seed, leg.name, phase, led.WallCycles, ph.Cycles)
				}
			}
		}
	}
}
