// Lowering from the progen tree to the frontend AST and verified bytecode.
//
// The lowering is total: every tree the generator or the shrinker can
// produce compiles. Array indices are range-reduced at the access site,
// divisors are forced nonzero, shift counts are masked, and loop variables
// resolve against the enclosing-loop stack (falling back to a constant at
// top level), so no edit the shrinker makes can create an ill-formed
// program — only out-of-bounds accesses guarded by try/catch are ever
// allowed to raise.
package progen

import (
	"fmt"

	"jrpm/internal/bytecode"
	fe "jrpm/internal/frontend"
)

// lowerer carries per-program lowering state.
type lowerer struct {
	p        *Prog
	fp       *fe.Program
	statics  []int // frontend static slots, by progen static index
	mix      *fe.FuncRef
	loopVars []string // enclosing loop variables, outermost first
	loopTops []int64  // exclusive upper bound of each enclosing loop variable
	nextVar  int      // fresh loop-variable counter
}

// Lower compiles the tree to a frontend program (for the AST-interpreter
// oracle) and verified bytecode (for the VM/Hydra legs).
func Lower(p *Prog) (*fe.Program, *bytecode.Program, error) {
	lo := &lowerer{p: p, fp: fe.NewProgram(p.Name)}
	for i := 0; i < p.Statics; i++ {
		lo.statics = append(lo.statics, lo.fp.StaticVar(fmt.Sprintf("s%d", i)))
	}

	// The mix helper and the monitor class are declared only when the tree
	// uses them, so shrinking away the last call/sync drops them from the
	// image too.
	var monClass *fe.ClassRef
	if treeUses(p.Body, SSync) {
		monClass = lo.fp.Class("Mon", "pad")
	}
	if treeUses(p.Body, SCallMix) {
		lo.mix = lo.fp.Func("mix", []string{"x", "y"}, true)
		k2 := p.HelperK2 & 7
		lo.mix.Body(
			fe.Ret(fe.BAnd(
				fe.BXor(
					fe.Mul(fe.BAnd(fe.L("x"), fe.I(0xffff)), fe.I(p.HelperK1)),
					fe.Shl(fe.BAnd(fe.L("y"), fe.I(0xff)), fe.I(k2))),
				fe.I(0xffffff))),
		)
	}

	main := lo.fp.Func("main", nil, false)
	var body []any

	// Prologue: locals, statics, arrays (allocated, optionally prefilled),
	// and the monitor object.
	for i, v := range p.LocalInit {
		body = append(body, fe.Set(local(i), fe.I(v)))
	}
	for i, v := range p.StaticInit {
		body = append(body, fe.SetStatic(lo.statics[i], fe.I(v)))
	}
	for a := 0; a < p.Arrays; a++ {
		body = append(body, fe.Set(array(a), fe.NewArr(fe.I(p.ArrayLen))))
		if a < len(p.Prefill) && p.Prefill[a] {
			pv := lo.fresh()
			body = append(body, fe.ForUp(pv, fe.I(0), fe.I(p.ArrayLen),
				fe.SetIdx(fe.L(array(a)), fe.L(pv),
					fe.Rem(fe.Mul(fe.L(pv), fe.I(p.PrefillMul[a])), fe.I(1009)))))
		}
	}
	if monClass != nil {
		body = append(body, fe.Set("mon", fe.NewE(monClass)))
	}

	for _, s := range p.Body {
		body = append(body, lo.stmt(s))
	}

	// Epilogue probes.
	for _, pr := range p.Probes {
		switch pr.Kind {
		case PLocal:
			body = append(body, fe.Print(fe.L(local(pr.K%max1(p.Locals)))))
		case PStatic:
			body = append(body, fe.Print(fe.StaticE(lo.statics[pr.K%max1(p.Statics)])))
		case PArrSum:
			a := fe.L(array(pr.K % max1(p.Arrays)))
			ck, qv := lo.fresh(), lo.fresh()
			body = append(body,
				fe.Set(ck, fe.I(0)),
				fe.ForUp(qv, fe.I(0), fe.I(p.ArrayLen),
					fe.Set(ck, fe.Add(fe.Mul(fe.L(ck), fe.I(31)), fe.Idx(a, fe.L(qv))))),
				fe.Print(fe.L(ck)))
		case PArrElem:
			a := fe.L(array(pr.K % max1(p.Arrays)))
			body = append(body, fe.Print(fe.Idx(a, fe.I(mod64(pr.Idx, p.ArrayLen)))))
		}
	}
	main.Body(body...)

	bp, err := lo.fp.Build()
	if err != nil {
		return nil, nil, err
	}
	return lo.fp, bp, nil
}

// Asm returns the canonical textual assembly of the lowered program — the
// determinism anchor: same seed ⇒ byte-identical Asm.
func Asm(p *Prog) (string, error) {
	_, bp, err := Lower(p)
	if err != nil {
		return "", err
	}
	return bytecode.Format(bp), nil
}

// Instructions counts bytecode instructions: total across all methods, and
// the kernel size — the largest loop body in main, which is the region the
// speculative hardware actually executes. Reproducer size limits are stated
// against the kernel count.
func Instructions(bp *bytecode.Program) (total, kernel int) {
	for _, m := range bp.Methods {
		total += len(m.Code)
	}
	kernel = largestLoop(bp)
	return total, kernel
}

// stmt lowers one statement node.
func (lo *lowerer) stmt(s *Stmt) fe.Stmt {
	p := lo.p
	switch s.Kind {
	case SAssign:
		return fe.Set(local(s.Dst%max1(p.Locals)), lo.expr(s.E))
	case SReduce:
		d := local(s.Dst % max1(p.Locals))
		return fe.Set(d, fe.Add(fe.L(d), lo.expr(s.E)))
	case SCarry:
		d := local(s.Dst % max1(p.Locals))
		m := s.M
		if m <= 0 {
			m = 9973
		}
		return fe.Set(d, fe.Rem(
			fe.BAnd(fe.Add(fe.Mul(fe.L(d), fe.I(s.K)), lo.expr(s.E)), fe.I(0x7fffffff)),
			fe.I(m)))
	case SArrStore:
		return fe.SetIdx(fe.L(array(s.Arr%max1(p.Arrays))), lo.index(s.Idx), lo.expr(s.E))
	case SStatStore:
		return fe.SetStatic(lo.statics[s.Dst%max1(p.Statics)], lo.expr(s.E))
	case SCallMix:
		if lo.mix == nil { // shrinker dropped the last call; degrade to assign
			return fe.Set(local(s.Dst%max1(p.Locals)), lo.expr(s.E))
		}
		return fe.Set(local(s.Dst%max1(p.Locals)),
			fe.CallE(lo.mix, lo.expr(s.E), lo.expr(s.E2)))
	case SFloat:
		return fe.Set(local(s.Dst%max1(p.Locals)),
			fe.ToInt(fe.FMul(
				fe.ToFloat(fe.BAnd(lo.expr(s.E), fe.I(0xfff))),
				fe.F(float64(s.K)))))
	case SIf:
		return fe.If(lo.cond(s), lo.block(s.Body), lo.block(s.Else))
	case SLoop:
		return lo.loopStmt(s)
	case SBreakIf:
		if len(lo.loopVars) == 0 {
			return fe.Set(local(0), fe.I(0)) // no enclosing loop; inert
		}
		return fe.If(lo.cond(s), fe.S(fe.Break()), nil)
	case SContinueIf:
		if len(lo.loopVars) == 0 {
			return fe.Set(local(0), fe.I(0))
		}
		return fe.If(lo.cond(s), fe.S(fe.Continue()), nil)
	case SSync:
		st := fe.SetIdx(fe.L(array(s.Arr%max1(p.Arrays))), lo.index(s.Idx), lo.expr(s.E))
		return fe.Synchronized(fe.L("mon"), st)
	case STry:
		// The index may go negative by up to K; the catch arm observes the
		// bounds exception.
		d := local(s.Dst % max1(p.Locals))
		raw := fe.Sub(lo.index(s.Idx), fe.I(s.K))
		return fe.Try(
			fe.S(fe.Set(d, fe.Idx(fe.L(array(s.Arr%max1(p.Arrays))), raw))),
			0, "exc",
			fe.S(fe.Set(d, fe.I(-1))))
	}
	return fe.Set(local(0), fe.I(0))
}

// loopStmt lowers a counted loop. The shape differs from fe.ForUp in one
// deliberate way: the increment runs at the TOP of the body, so a generated
// Continue skips the rest of the iteration without skipping the increment
// (ForUp's bottom increment would loop forever). The loop variable still
// takes values 0..Iters-1 and is still written by a single iinc per
// iteration, which is the inductor shape the analyzer recognizes.
func (lo *lowerer) loopStmt(s *Stmt) fe.Stmt {
	iters := s.Iters
	if iters < 0 {
		iters = 0
	}
	v := lo.fresh()
	lo.loopVars = append(lo.loopVars, v)
	lo.loopTops = append(lo.loopTops, iters)
	inner := lo.block(s.Body)
	lo.loopVars = lo.loopVars[:len(lo.loopVars)-1]
	lo.loopTops = lo.loopTops[:len(lo.loopTops)-1]

	body := append([]fe.Stmt{fe.Inc(v, 1)}, inner...)
	return feSeq(
		fe.Set(v, fe.I(-1)),
		fe.While(fe.Lt(fe.L(v), fe.I(iters-1)), body),
	)
}

// block lowers a statement list.
func (lo *lowerer) block(ss []*Stmt) []fe.Stmt {
	var out []fe.Stmt
	for _, s := range ss {
		out = append(out, lo.stmt(s))
	}
	return out
}

// cond lowers a condition shape.
func (lo *lowerer) cond(s *Stmt) fe.Cond {
	a, b := lo.expr(s.CondA), lo.expr(s.CondB)
	switch s.Cond {
	case CLt:
		return fe.Lt(a, b)
	case CGe:
		return fe.Ge(a, b)
	case CEqMod3:
		return fe.Eq(fe.Rem(fe.BAnd(a, fe.I(0xffff)), fe.I(3)), fe.I(0))
	case CAndNe:
		return fe.AndC(fe.Le(a, b), fe.Ne(a, fe.I(7)))
	case CEqK:
		return fe.Eq(a, b)
	}
	return fe.Lt(a, b)
}

// index lowers an index expression with range reduction to [0, ArrayLen).
// Provably in-range indices — a constant within the array, or a loop
// variable whose loop bound fits the array — skip the reduction wrapper, so
// shrunk reproducers keep only the instructions that matter.
func (lo *lowerer) index(e *Expr) fe.Expr {
	if e != nil {
		switch e.Kind {
		case EConst:
			if e.K >= 0 && e.K < lo.p.ArrayLen {
				return fe.I(e.K)
			}
		case ELoopVar:
			if n := len(lo.loopVars); n > 0 {
				d := int(mod64(e.K, int64(n)))
				if lo.loopTops[n-1-d] <= lo.p.ArrayLen {
					return fe.L(lo.loopVars[n-1-d])
				}
			}
		}
	}
	return fe.Rem(fe.BAnd(lo.expr(e), fe.I(0x7fffffff)), fe.I(lo.p.ArrayLen))
}

// expr lowers an expression node. All partial operations are guarded.
func (lo *lowerer) expr(e *Expr) fe.Expr {
	if e == nil {
		return fe.I(0)
	}
	p := lo.p
	switch e.Kind {
	case EConst:
		return fe.I(e.K)
	case ELocal:
		return fe.L(local(int(mod64(e.K, int64(max1(p.Locals))))))
	case ELoopVar:
		if len(lo.loopVars) == 0 {
			return fe.I(e.K & 7)
		}
		// K selects among enclosing loop variables, innermost first.
		d := int(mod64(e.K, int64(len(lo.loopVars))))
		return fe.L(lo.loopVars[len(lo.loopVars)-1-d])
	case EStatic:
		return fe.StaticE(lo.statics[int(mod64(e.K, int64(max1(p.Statics))))])
	case EArrLoad:
		a := array(int(mod64(e.K, int64(max1(p.Arrays)))))
		return fe.Idx(fe.L(a), lo.index(e.A))
	case EAdd:
		return fe.Add(lo.expr(e.A), lo.expr(e.B))
	case ESub:
		return fe.Sub(lo.expr(e.A), lo.expr(e.B))
	case EMul:
		return fe.Mul(fe.BAnd(lo.expr(e.A), fe.I(0xffff)), fe.BAnd(lo.expr(e.B), fe.I(0xff)))
	case EDiv:
		return fe.Div(lo.expr(e.A), fe.Add(fe.BAnd(lo.expr(e.B), fe.I(15)), fe.I(1)))
	case EXor:
		return fe.BXor(lo.expr(e.A), lo.expr(e.B))
	case EAnd:
		return fe.BAnd(lo.expr(e.A), lo.expr(e.B))
	case EShr:
		return fe.Shr(lo.expr(e.A), fe.BAnd(lo.expr(e.B), fe.I(7)))
	case EMax:
		return fe.MaxI(lo.expr(e.A), lo.expr(e.B))
	}
	return fe.I(0)
}

// fresh returns a fresh compiler-generated variable name.
func (lo *lowerer) fresh() string {
	lo.nextVar++
	return fmt.Sprintf("t%d", lo.nextVar-1)
}

func local(i int) string { return fmt.Sprintf("v%d", i) }
func array(i int) string { return fmt.Sprintf("a%d", i) }

// max1 clamps a size to at least 1 so mod-mapping never divides by zero
// even on trees the shrinker has hollowed out.
func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// mod64 is a non-negative modulus.
func mod64(k, n int64) int64 {
	if n <= 0 {
		return 0
	}
	m := k % n
	if m < 0 {
		m += n
	}
	return m
}

// treeUses reports whether any statement in the tree has the given kind.
func treeUses(ss []*Stmt, k StmtKind) bool {
	for _, s := range ss {
		if s == nil {
			continue
		}
		if s.Kind == k || treeUses(s.Body, k) || treeUses(s.Else, k) {
			return true
		}
	}
	return false
}

// feSeq packs a statement pair into a single fe.Stmt-compatible value by
// nesting in an always-true if — used where the tree expects one statement
// but the lowering needs a sequence.
func feSeq(ss ...fe.Stmt) fe.Stmt {
	return fe.If(fe.Eq(fe.I(0), fe.I(0)), ss, nil)
}
