// Delta-debugging shrinker: minimize a divergent program to a small
// reproducer while preserving the divergence.
//
// The shrinker is a greedy fixpoint over candidate edits to the program
// tree. Each candidate clones the tree, applies one edit, and re-runs the
// differential harness; the edit is kept iff the clone still diverges (any
// divergence counts — classic ddmin practice, since shrinking frequently
// walks one bug's manifestation into another's). Edits, in the order tried:
//
//   - delete a statement (any list in the tree, one element at a time,
//     after first trying to delete whole halves of long lists);
//   - hoist a compound statement's body in place of the statement (unwraps
//     ifs, loops, sync blocks);
//   - reduce a loop's iteration count (1, 2, 4, half);
//   - simplify an expression to one of its operands, then to a constant;
//   - drop an epilogue probe, or narrow an array-checksum probe to the
//     single element that carries the divergence;
//   - zero initial values, drop array prefill, shrink the arrays.
//
// Every edit keeps the tree well-formed by construction (lowering is total),
// so the predicate is the only correctness authority the shrinker needs.
package progen

import (
	"encoding/json"
	"fmt"
)

// ShrinkResult is the outcome of minimizing one divergent program.
type ShrinkResult struct {
	Prog    *Prog
	Verdict *Verdict // verdict of the final minimized program
	Steps   int      // accepted edits
	Checks  int      // harness evaluations spent
	Total   int      // bytecode instructions, all methods
	Kernel  int      // instructions in the largest loop of main
}

// Shrink minimizes p under the given harness configuration. budget caps the
// number of harness evaluations (≤ 0 selects the default of 600). p itself
// is never mutated.
func Shrink(p *Prog, cc CheckConfig, budget int) *ShrinkResult {
	if budget <= 0 {
		budget = 600
	}
	cur := clone(p)
	res := &ShrinkResult{}

	diverges := func(q *Prog) bool {
		if res.Checks >= budget {
			return false
		}
		res.Checks++
		return Check(q, cc).Diverged()
	}
	if !diverges(cur) {
		// Nothing to do: the input does not diverge (or budget = 0).
		res.Prog = cur
		res.Verdict = Check(cur, cc)
		fillSizes(res)
		return res
	}

	for pass := 0; pass < 64; pass++ {
		improved := false
		for _, edit := range edits(cur) {
			if res.Checks >= budget {
				break
			}
			cand := clone(cur)
			if !edit(cand) {
				continue
			}
			if diverges(cand) {
				cur = cand
				res.Steps++
				improved = true
			}
		}
		if !improved || res.Checks >= budget {
			break
		}
	}

	res.Prog = cur
	res.Verdict = Check(cur, cc)
	fillSizes(res)
	return res
}

func fillSizes(res *ShrinkResult) {
	if _, bp, err := Lower(res.Prog); err == nil {
		res.Total, res.Kernel = Instructions(bp)
	}
}

// edit applies one candidate mutation to a cloned tree, returning false if
// it does not apply (out of range after earlier edits, no-op, …).
type edit func(*Prog) bool

// edits enumerates the candidate edits for the current tree. The
// enumeration is recomputed each pass, addressed by deterministic walk
// position so the same index edits the same node in any identical clone.
func edits(p *Prog) []edit {
	var out []edit

	// Halve long statement lists first (big deletions first = ddmin).
	for li, l := range stmtLists(p) {
		n := len(*l)
		if n >= 3 {
			li := li
			out = append(out,
				func(q *Prog) bool { return cutRange(q, li, 0, n/2) },
				func(q *Prog) bool { return cutRange(q, li, n/2, n) })
		}
	}
	// Then single statements, then hoists.
	for li, l := range stmtLists(p) {
		for si := range *l {
			li, si := li, si
			out = append(out, func(q *Prog) bool { return cutRange(q, li, si, si+1) })
			if s := (*l)[si]; len(s.Body) > 0 {
				out = append(out, func(q *Prog) bool { return hoist(q, li, si) })
			}
		}
	}
	// Loop iteration reduction.
	for li, l := range stmtLists(p) {
		for si, s := range *l {
			if s.Kind == SLoop && s.Iters > 1 {
				for _, n := range []int64{1, 2, 4, s.Iters / 2} {
					if n >= s.Iters {
						continue
					}
					li, si, n := li, si, n
					out = append(out, func(q *Prog) bool { return setIters(q, li, si, n) })
				}
			}
		}
	}
	// Expression simplification: node → operand, node → loop var, node → 0.
	for ei, h := range exprHolders(p) {
		ei := ei
		if (*h) != nil && (*h).A != nil {
			out = append(out, func(q *Prog) bool { return replaceExpr(q, ei, opA) })
		}
		if (*h) != nil && (*h).B != nil {
			out = append(out, func(q *Prog) bool { return replaceExpr(q, ei, opB) })
		}
		if (*h) != nil && (*h).Kind != ELoopVar && (*h).Kind != EConst {
			out = append(out, func(q *Prog) bool { return replaceExpr(q, ei, loopVarExpr) })
		}
		if (*h) != nil && ((*h).Kind != EConst || (*h).K != 0) {
			out = append(out, func(q *Prog) bool { return replaceExpr(q, ei, zeroExpr) })
		}
	}
	// Probe reduction.
	for pi := range p.Probes {
		pi := pi
		out = append(out, func(q *Prog) bool { return dropProbe(q, pi) })
		if p.Probes[pi].Kind == PArrSum {
			lim := p.ArrayLen
			if lim > 8 {
				lim = 8
			}
			for e := int64(0); e < lim; e++ {
				pi, e := pi, e
				out = append(out, func(q *Prog) bool { return narrowProbe(q, pi, e) })
			}
		}
	}
	// Scalar and layout reductions.
	for i, v := range p.LocalInit {
		if v != 0 {
			i := i
			out = append(out, func(q *Prog) bool {
				if i >= len(q.LocalInit) || q.LocalInit[i] == 0 {
					return false
				}
				q.LocalInit[i] = 0
				return true
			})
		}
	}
	for i, v := range p.StaticInit {
		if v != 0 {
			i := i
			out = append(out, func(q *Prog) bool {
				if i >= len(q.StaticInit) || q.StaticInit[i] == 0 {
					return false
				}
				q.StaticInit[i] = 0
				return true
			})
		}
	}
	for i, on := range p.Prefill {
		if on {
			i := i
			out = append(out, func(q *Prog) bool {
				if i >= len(q.Prefill) || !q.Prefill[i] {
					return false
				}
				q.Prefill[i] = false
				return true
			})
		}
	}
	for _, n := range []int64{4, 8, p.ArrayLen / 2} {
		if n > 0 && n < p.ArrayLen {
			n := n
			out = append(out, func(q *Prog) bool {
				if n >= q.ArrayLen {
					return false
				}
				q.ArrayLen = n
				return true
			})
		}
	}
	return out
}

// ---- walk-position addressing ----

// stmtLists returns every statement list in the tree in deterministic walk
// order: the top-level body first, then each statement's Body and Else,
// depth-first.
func stmtLists(p *Prog) []*[]*Stmt {
	var out []*[]*Stmt
	var walk func(l *[]*Stmt)
	walk = func(l *[]*Stmt) {
		out = append(out, l)
		for _, s := range *l {
			if len(s.Body) > 0 {
				walk(&s.Body)
			}
			if len(s.Else) > 0 {
				walk(&s.Else)
			}
		}
	}
	walk(&p.Body)
	return out
}

// exprHolders returns the address of every expression slot in the tree,
// deterministic walk order.
func exprHolders(p *Prog) []**Expr {
	var out []**Expr
	var walkE func(h **Expr)
	walkE = func(h **Expr) {
		if *h == nil {
			return
		}
		out = append(out, h)
		walkE(&(*h).A)
		walkE(&(*h).B)
	}
	var walkS func(l []*Stmt)
	walkS = func(l []*Stmt) {
		for _, s := range l {
			walkE(&s.CondA)
			walkE(&s.CondB)
			walkE(&s.Idx)
			walkE(&s.E)
			walkE(&s.E2)
			walkS(s.Body)
			walkS(s.Else)
		}
	}
	walkS(p.Body)
	return out
}

func cutRange(q *Prog, list, from, to int) bool {
	ls := stmtLists(q)
	if list >= len(ls) {
		return false
	}
	l := ls[list]
	if from < 0 || to > len(*l) || from >= to {
		return false
	}
	*l = append((*l)[:from:from], (*l)[to:]...)
	return true
}

// hoist replaces a compound statement with its body.
func hoist(q *Prog, list, idx int) bool {
	ls := stmtLists(q)
	if list >= len(ls) {
		return false
	}
	l := ls[list]
	if idx >= len(*l) || len((*l)[idx].Body) == 0 {
		return false
	}
	body := (*l)[idx].Body
	rest := append([]*Stmt{}, (*l)[idx+1:]...)
	*l = append(append((*l)[:idx:idx], body...), rest...)
	return true
}

func setIters(q *Prog, list, idx int, n int64) bool {
	ls := stmtLists(q)
	if list >= len(ls) {
		return false
	}
	l := ls[list]
	if idx >= len(*l) || (*l)[idx].Kind != SLoop || (*l)[idx].Iters <= n {
		return false
	}
	(*l)[idx].Iters = n
	return true
}

func opA(e *Expr) *Expr       { return e.A }
func opB(e *Expr) *Expr       { return e.B }
func zeroExpr(*Expr) *Expr    { return &Expr{Kind: EConst} }
func loopVarExpr(*Expr) *Expr { return &Expr{Kind: ELoopVar} }

func replaceExpr(q *Prog, idx int, f func(*Expr) *Expr) bool {
	hs := exprHolders(q)
	if idx >= len(hs) {
		return false
	}
	n := f(*hs[idx])
	if n == nil {
		return false
	}
	*hs[idx] = n
	return true
}

func dropProbe(q *Prog, idx int) bool {
	if idx >= len(q.Probes) || len(q.Probes) <= 1 {
		return false // keep at least one observable
	}
	q.Probes = append(q.Probes[:idx:idx], q.Probes[idx+1:]...)
	return true
}

// narrowProbe replaces an array-checksum probe with a single-element probe.
func narrowProbe(q *Prog, idx int, elem int64) bool {
	if idx >= len(q.Probes) || q.Probes[idx].Kind != PArrSum {
		return false
	}
	q.Probes[idx] = Probe{Kind: PArrElem, K: q.Probes[idx].K, Idx: elem}
	return true
}

// clone deep-copies a program tree via its JSON form — the same encoding
// reproducers use, so anything that survives a shrink also round-trips.
func clone(p *Prog) *Prog {
	raw, err := json.Marshal(p)
	if err != nil {
		panic(fmt.Sprintf("progen: clone marshal: %v", err))
	}
	q := &Prog{}
	if err := json.Unmarshal(raw, q); err != nil {
		panic(fmt.Sprintf("progen: clone unmarshal: %v", err))
	}
	return q
}
