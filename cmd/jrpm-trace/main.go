// Command jrpm-trace runs one workload (or a .jasm program) through the
// full Jrpm pipeline with the speculation flight recorder attached to the
// speculative phase, then exports the recorded events as Chrome trace-event
// JSON — load the file at ui.perfetto.dev (or chrome://tracing) to see the
// paper's Figure 6/7 run/wait/violated breakdown as a per-CPU timeline.
//
// Usage:
//
//	jrpm-trace -w BitOps -o trace.json -metrics -
//	jrpm-trace [-cpus N] [-guard] [-events N] [-cache] program.jasm
//
// -metrics dumps the run's typed metrics (cycle/state/commit/violation/
// overflow/cache counters plus event histograms) in Prometheus text format;
// "-" writes them to stdout. -events bounds the flight-recorder ring: when
// a run produces more events than fit, the oldest are overwritten and the
// drop count is reported. -cache additionally records per-access L1/L2 miss
// and bus-transfer events (high volume; they evict timeline events from a
// bounded ring, so they are off by default).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"jrpm/internal/buildinfo"
	"jrpm/internal/bytecode"
	"jrpm/internal/core"
	"jrpm/internal/obs"
	"jrpm/internal/tls"
	"jrpm/internal/workloads"
)

func main() {
	wname := flag.String("w", "", "workload name from the benchmark suite (see -list)")
	out := flag.String("o", "trace.json", "Chrome trace-event JSON output path (\"-\" = stdout)")
	metricsPath := flag.String("metrics", "", "write Prometheus text metrics to PATH (\"-\" = stdout)")
	events := flag.Int("events", 1<<20, "flight-recorder ring capacity in events")
	cache := flag.Bool("cache", false, "also record per-access cache events (L1/L2 miss, bus transfer)")
	cpus := flag.Int("cpus", 4, "number of CPUs")
	guard := flag.Bool("guard", false, "enable the STL violation-storm guard")
	list := flag.Bool("list", false, "list workload names and exit")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Banner("jrpm-trace"))
		return
	}

	if *list {
		for _, w := range workloads.All() {
			fmt.Println(w.Name)
		}
		return
	}

	opts := core.DefaultOptions()
	opts.NCPU = *cpus
	if *guard {
		cfg := tls.DefaultGuardConfig()
		opts.Guard = &cfg
	}

	var prog *bytecode.Program
	var name string
	switch {
	case *wname != "":
		w := workloads.ByName(*wname)
		if w == nil {
			fmt.Fprintf(os.Stderr, "jrpm-trace: unknown workload %q (try -list)\n", *wname)
			os.Exit(2)
		}
		if w.HeapWords > 0 {
			opts.VM.HeapWords = w.HeapWords
		}
		prog = w.Build()
		name = w.Name
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		fail(err)
		prog, err = bytecode.Parse(string(src))
		fail(err)
		name = strings.TrimSuffix(filepath.Base(flag.Arg(0)), ".jasm")
	default:
		fmt.Fprintln(os.Stderr, "usage: jrpm-trace [-w NAME | program.jasm] [-o trace.json] [-metrics -|PATH] [-events N] [-cache] [-cpus N] [-guard]")
		os.Exit(2)
	}

	mask := obs.MaskDefault
	if *cache {
		mask = obs.MaskAll
	}
	ring := obs.NewRingMasked(*events, mask)
	opts.Recorder = ring

	res, err := core.Run(prog, opts)
	fail(err)
	if !res.OutputsMatch {
		fail(fmt.Errorf("speculative output differs from sequential"))
	}
	evs := ring.Events()

	if *out != "" {
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			fail(err)
			defer f.Close()
			w = f
		}
		fail(obs.WriteChromeTrace(w, evs, opts.NCPU, name))
	}

	if *metricsPath != "" {
		reg := res.Metrics()
		obs.SummarizeEvents(reg, evs)
		reg.Gauge("jrpm_trace_events_recorded").Set(float64(ring.Total()))
		reg.Gauge("jrpm_trace_events_dropped").Set(float64(ring.Dropped()))
		w := os.Stdout
		if *metricsPath != "-" {
			f, err := os.Create(*metricsPath)
			fail(err)
			defer f.Close()
			w = f
		}
		fail(reg.WritePrometheus(w))
	}

	fmt.Fprintf(os.Stderr,
		"%s: %d cycles speculative (%.2fx over sequential); %d events recorded, %d dropped",
		name, res.TLS.Cycles, res.SpeedupActual(), ring.Total(), ring.Dropped())
	if *out != "" && *out != "-" {
		fmt.Fprintf(os.Stderr, "; trace written to %s (open at ui.perfetto.dev)", *out)
	}
	fmt.Fprintln(os.Stderr)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrpm-trace:", err)
		os.Exit(1)
	}
}
