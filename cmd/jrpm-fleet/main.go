// Command jrpm-fleet fronts N jrpm-serve replicas with a sharded,
// cache-backed router (see internal/fleet): consistent hashing spreads
// submissions over the replicas, a byte-budgeted LRU memoizes results by
// content address, singleflight coalescing collapses identical in-flight
// jobs, per-shard circuit breakers shed dead replicas, and hedged retries
// bound tail latency.
//
// Usage:
//
//	jrpm-fleet -replicas http://127.0.0.1:8081,http://127.0.0.1:8082
//	           [-addr :9090] [-cache-bytes N] [-vnodes N]
//	           [-hedge-after D] [-timeout D] [-cyclebudget N] [-tier on|off]
//	           [-metrics FILE]
//
// Endpoints:
//
//	POST /run       run a job spec through the fleet (octet-stream result;
//	                ?format=json for a summary)
//	GET  /replicas  shard + breaker states
//	GET  /healthz   GET /readyz   GET /metrics
//
// The -cyclebudget and -tier flags must mirror the replicas' settings: the
// router derives each submission's cache key from the options a replica
// would run with, so a mismatch would memoize under the wrong address.
//
// On SIGINT/SIGTERM the router stops accepting, drains in-flight requests,
// optionally flushes metrics, and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"jrpm/internal/buildinfo"
	"jrpm/internal/core"
	"jrpm/internal/fleet"
	"jrpm/internal/serve"
)

func main() {
	addr := flag.String("addr", ":9090", "HTTP listen address")
	replicas := flag.String("replicas", "", "comma-separated jrpm-serve base URLs (required)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result cache budget in bytes (0 = default 64 MiB, <0 disables)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = default 64)")
	hedgeAfter := flag.Duration("hedge-after", 2*time.Second, "hedge to the next shard when an attempt exceeds this (0 disables)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request routing timeout")
	budget := flag.Int64("cyclebudget", 0, "replicas' simulated-cycle budget, for cache keying (0 = default 2e9)")
	tier := flag.String("tier", "on", "replicas' tier-2 engine setting, for cache keying")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight requests")
	metricsOut := flag.String("metrics", "", "flush Prometheus metrics to FILE on shutdown (\"-\" = stderr)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Banner("jrpm-fleet"))
		return
	}

	tierOff, err := core.ParseTierFlag(*tier)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrpm-fleet:", err)
		os.Exit(2)
	}
	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "jrpm-fleet: -replicas is required (comma-separated jrpm-serve URLs)")
		os.Exit(2)
	}
	backends := make([]fleet.Backend, len(urls))
	for i, u := range urls {
		backends[i] = &fleet.HTTPBackend{ReplicaName: u, BaseURL: u}
	}
	rt := fleet.New(fleet.Config{
		CacheBytes: *cacheBytes,
		VNodes:     *vnodes,
		HedgeAfter: *hedgeAfter,
		Serve: serve.Config{
			MaxCycles: *budget,
			Tier2Off:  tierOff,
		},
	}, backends)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrpm-fleet:", err)
		os.Exit(1)
	}
	hs := &http.Server{
		Handler: http.TimeoutHandler(rt.Handler(), *timeout, "fleet: routing timeout\n"),
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "jrpm-fleet: listening on %s, %d replica(s), hedge after %v\n",
		ln.Addr(), len(urls), *hedgeAfter)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "jrpm-fleet: %v: draining (grace %v)\n", sig, *grace)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "jrpm-fleet: http:", err)
		os.Exit(1)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), *grace)
	err = hs.Shutdown(dctx)
	dcancel()
	if err != nil {
		fmt.Fprintf(os.Stderr, "jrpm-fleet: grace expired: %v\n", err)
	} else {
		fmt.Fprintln(os.Stderr, "jrpm-fleet: drained cleanly")
	}

	if *metricsOut != "" {
		w := os.Stderr
		if *metricsOut != "-" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jrpm-fleet:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := rt.Metrics().WritePrometheus(w); err != nil {
			fmt.Fprintln(os.Stderr, "jrpm-fleet:", err)
			os.Exit(1)
		}
	}
}
