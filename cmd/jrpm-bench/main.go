// Command jrpm-bench regenerates the paper's evaluation artifacts from the
// reproduced system: every table and figure of the evaluation section, plus
// the ablation studies DESIGN.md calls out.
//
// Usage:
//
//	jrpm-bench                  # everything
//	jrpm-bench -table 1|3|4     # one table
//	jrpm-bench -fig 8|9|10      # one figure
//	jrpm-bench -ablate NAME     # inductor|sync|alloc|locks|handlers|buffers|cpus|banks
//	jrpm-bench -attribution     # Table 3's per-benchmark optimization columns (slow)
//	jrpm-bench -faults PLAN     # inject deterministic faults into every speculative run
//	jrpm-bench -cyclebudget N   # cycle-budget watchdog per run
//	jrpm-bench -guard           # enable the STL violation-storm guard
//	jrpm-bench -progress        # per-workload progress lines on stderr
//	jrpm-bench -metrics FILE    # dump suite metrics as Prometheus text ("-" = stdout)
//	jrpm-bench -trace DIR       # write one Perfetto trace per workload into DIR and exit
//	jrpm-bench -http ADDR       # serve net/http/pprof and expvar during the run
//	jrpm-bench -timeout D       # wall-clock deadline for the whole invocation
//	jrpm-bench -doctor          # attach the speculation doctor; print the suite digest
//	jrpm-bench -compare B.json  # host-perf gate vs a scripts/bench.sh snapshot
//
// On timeout or ^C the process exits with status 3 (vs 1 for a simulation
// error) and reports how much of the suite completed before the cut.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"

	"jrpm/internal/analyzer"
	"jrpm/internal/buildinfo"
	"jrpm/internal/bytecode"
	"jrpm/internal/core"
	"jrpm/internal/faultinject"
	fe "jrpm/internal/frontend"
	"jrpm/internal/hydra"
	"jrpm/internal/obs"
	"jrpm/internal/report"
	"jrpm/internal/tls"
	"jrpm/internal/tracer"
	"jrpm/internal/workloads"
)

var (
	faultsFlag  = flag.String("faults", "", "fault-injection plan for speculative runs, e.g. seed=42,raw=0.01,overflow=0.005")
	budgetFlag  = flag.Int64("cyclebudget", 0, "cycle-budget watchdog for each run (0 = default 2e9)")
	guardFlag   = flag.Bool("guard", false, "enable the STL violation-storm guard")
	timeoutFlag = flag.Duration("timeout", 0, "wall-clock deadline for the whole invocation (0 = none); exceeding it exits with status 3")
	tierFlag    = flag.String("tier", "on", "tier-2 block engine, on or off (results are bit-identical; off forces pure interpretation)")
	doctorFlag  = flag.Bool("doctor", false, "attach the speculation doctor's cycle ledger to every run (bit-identical timing) and print the suite digest")
)

// runCtx carries the -timeout deadline and SIGINT/SIGTERM into every run;
// set once in main before any simulation starts.
var runCtx = context.Background()

// exitTimeout distinguishes "cut short by -timeout or a signal" from a
// simulation error (exit 1) and a usage error (exit 2).
const exitTimeout = 3

func cutShort(err error) bool {
	return errors.Is(err, hydra.ErrCancelled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// baseOpts is the suite configuration with the safety-net flags applied.
// Every speculative run then carries the fault plan, budget and guard; a
// zero-fault plan leaves cycle counts identical to the unflagged baseline.
func baseOpts() core.Options {
	o := core.DefaultOptions()
	o.Ctx = runCtx
	tierOff, err := core.ParseTierFlag(*tierFlag)
	check(err)
	o.Tier2Off = tierOff
	if *budgetFlag > 0 {
		o.MaxCycles = *budgetFlag
	}
	if *faultsFlag != "" {
		plan, err := faultinject.Parse(*faultsFlag)
		check(err)
		o.Faults = &plan
	}
	if *guardFlag {
		cfg := tls.DefaultGuardConfig()
		o.Guard = &cfg
	}
	o.Diagnose = *doctorFlag
	return o
}

// liveMetrics backs the "jrpm" expvar: nil until the suite completes.
var liveMetrics atomic.Pointer[obs.Registry]

func main() {
	table := flag.Int("table", 0, "render one table (1, 3 or 4)")
	attrib := flag.Bool("attribution", false, "render Table 3's optimization attribution columns (slow)")
	fig := flag.Int("fig", 0, "render one figure (8, 9 or 10)")
	ablate := flag.String("ablate", "", "run one ablation study")
	progressFlag := flag.Bool("progress", false, "emit per-workload progress lines to stderr")
	metricsFlag := flag.String("metrics", "", "dump suite metrics as Prometheus text to FILE (\"-\" = stdout)")
	traceDir := flag.String("trace", "", "write one Chrome trace-event JSON per workload into DIR and exit")
	httpAddr := flag.String("http", "", "serve net/http/pprof and expvar on ADDR (e.g. :6060) during the run")
	compare := flag.String("compare", "", "re-measure the Table 3 suite's host wall time against a scripts/bench.sh snapshot (BENCH_pr*.json) and exit nonzero on regression")
	compareTol := flag.Float64("compare-tolerance", 0.10, "geomean regression tolerance for -compare (0.10 = 10%)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Banner("jrpm-bench"))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeoutFlag > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, *timeoutFlag,
			fmt.Errorf("%w: -timeout %v elapsed", context.DeadlineExceeded, *timeoutFlag))
		defer cancel()
	}
	runCtx = ctx

	if *httpAddr != "" {
		expvar.Publish("jrpm", expvar.Func(func() any {
			if reg := liveMetrics.Load(); reg != nil {
				return reg.Snapshot()
			}
			return nil
		}))
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "jrpm-bench: http:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "serving pprof/expvar on %s\n", *httpAddr)
	}
	if *compare != "" {
		runCompare(*compare, *compareTol)
		return
	}
	if *traceDir != "" {
		traceSuite(*traceDir)
		return
	}
	if *ablate != "" {
		runAblation(*ablate)
		return
	}
	if *attrib {
		names := []string{"BitOps", "monteCarlo", "db", "mp3", "NeuralNet",
			"FourierTest", "jess", "deltaBlue", "Assignment", "moldyn"}
		text, err := report.Table3Opt(baseOpts(), names)
		check(err)
		fmt.Println(text)
		return
	}

	all := *table == 0 && *fig == 0
	needSuite := all || *table == 3 || *table == 4 || *fig != 0

	var results []*report.SuiteResult
	if needSuite {
		var progressW *os.File
		if *progressFlag {
			progressW = os.Stderr
		}
		var err error
		// An untyped nil must stay nil through the io.Writer conversion.
		if progressW != nil {
			results, err = report.RunSuiteParallelContext(runCtx, baseOpts(), nil, progressW)
		} else {
			results, err = report.RunSuiteParallelContext(runCtx, baseOpts(), nil, nil)
		}
		check(err)
		if *metricsFlag != "" {
			reg := report.SuiteMetrics(results)
			liveMetrics.Store(reg)
			w := os.Stdout
			if *metricsFlag != "-" {
				f, err := os.Create(*metricsFlag)
				check(err)
				defer f.Close()
				w = f
			}
			check(reg.WritePrometheus(w))
		}
	} else if *metricsFlag != "" {
		fmt.Fprintln(os.Stderr, "jrpm-bench: -metrics needs a suite run (table 3/4, a figure, or the default everything mode)")
	}
	if all || *table == 1 {
		newC, oldC := table1Measurement()
		fmt.Println(report.Table1(newC, oldC))
	}
	if all || *table == 3 {
		fmt.Println(report.Table3(results))
	}
	if all || *table == 4 {
		fmt.Println(report.Table4(results))
	}
	if all || *fig == 8 {
		fmt.Println(report.Figure8(results))
	}
	if all || *fig == 9 {
		fmt.Println(report.Figure9(results))
	}
	if all || *fig == 10 {
		fmt.Println(report.Figure10(results))
	}
	if all {
		fmt.Println(report.CategorySummary(results))
	}
	if *doctorFlag && needSuite {
		fmt.Println(report.DoctorSummary(results))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrpm-bench:", err)
		var se *report.SuiteError
		if errors.As(err, &se) {
			fmt.Fprintf(os.Stderr, "jrpm-bench: partial suite: %d/%d workloads completed, %d cancelled\n",
				len(se.Partial), se.Total, se.Cancelled)
		}
		if cutShort(err) {
			os.Exit(exitTimeout)
		}
		os.Exit(1)
	}
}

// table1Measurement measures the end-to-end handler-cost difference on the
// FourierTest kernel (chosen for its clean STL behaviour).
func table1Measurement() (newCycles, oldCycles int64) {
	w := workloads.ByName("FourierTest")
	optsNew := core.DefaultOptions()
	optsNew.Ctx = runCtx
	rNew, err := core.Run(w.Build(), optsNew)
	check(err)
	optsOld := core.DefaultOptions()
	optsOld.Ctx = runCtx
	optsOld.Handlers = tls.OldHandlers
	rOld, err := core.Run(w.Build(), optsOld)
	check(err)
	return rNew.TLS.Cycles, rOld.TLS.Cycles
}

// ablations compare the full system against one disabled feature over the
// benchmarks that exercise it.
func runAblation(name string) {
	type variant struct {
		label string
		opts  core.Options
	}
	base := core.DefaultOptions()
	base.Ctx = runCtx
	mkAnalyzer := func(mod func(*analyzer.Config)) core.Options {
		o := core.DefaultOptions()
		o.Ctx = runCtx
		a := analyzer.DefaultConfig()
		a.NCPU = o.NCPU
		a.Handlers = o.Handlers
		a.ParallelAlloc = o.VM.ParallelAlloc
		a.ElideLocks = o.VM.ElideLocks
		mod(&a)
		o.Analyzer = &a
		return o
	}

	var variants []variant
	var benches []string
	transformed := map[string]bool{}
	switch name {
	case "inductor":
		benches = []string{"BitOps", "FourierTest", "IDEA", "shallow"}
		variants = []variant{
			{"full system", base},
			{"no non-communicating inductors", mkAnalyzer(func(a *analyzer.Config) { a.NoInductors = true; a.NoResetable = true })},
		}
	case "sync":
		benches = []string{"monteCarlo", "db"}
		variants = []variant{
			{"full system", base},
			{"no thread synchronizing locks", mkAnalyzer(func(a *analyzer.Config) { a.NoSyncLocks = true })},
		}
	case "alloc":
		off := base
		off.VM.ParallelAlloc = false
		fmt.Println("Ablation: alloc (per-iteration allocation microbenchmark, §5.2)")
		for _, v := range []variant{{"per-CPU free lists", base}, {"shared free list", off}} {
			res, err := core.Run(allocChurnProgram(), v.opts)
			check(err)
			fmt.Printf("%-28s %6.2fx speedup, %d violations\n",
				v.label, res.SpeedupActual(), res.TLS.Violations)
		}
		return
	case "locks":
		benches = []string{"jess", "db"}
		off := base
		off.VM.ElideLocks = false
		variants = []variant{{"speculation-aware locks", base}, {"original object locks", off}}
	case "handlers":
		benches = []string{"BitOps", "FourierTest", "LuFactor", "decJpeg"}
		old := base
		old.Handlers = tls.OldHandlers
		variants = []variant{{"new handlers (Table 1)", base}, {"old handlers", old}}
	case "buffers":
		benches = []string{"raytrace", "fft"}
		for _, lines := range []int{16, 32, 64, 128} {
			o := core.DefaultOptions()
			o.Ctx = runCtx
			t := tls.DefaultConfig(o.NCPU)
			t.StoreBufferLines = lines
			o.TLS = &t
			variants = append(variants, variant{fmt.Sprintf("store buffer %d lines", lines), o})
		}
	case "cpus":
		benches = []string{"FourierTest", "shallow", "IDEA", "mp3"}
		for _, n := range []int{2, 4, 8} {
			o := core.DefaultOptions()
			o.Ctx = runCtx
			o.NCPU = n
			variants = append(variants, variant{fmt.Sprintf("%d CPUs", n), o})
		}
	case "banks":
		// With a single comparator bank, inner loops of a nest go
		// unprofiled while an outer loop holds the bank; the loops the
		// analyzer would have chosen (LuFactor's row updates, euler's
		// sweeps) are never seen.
		benches = []string{"LuFactor", "euler", "mp3"}
		for _, n := range []int{1, 2, 8} {
			o := core.DefaultOptions()
			o.Ctx = runCtx
			t := tracer.DefaultConfig()
			t.NumBanks = n
			o.Tracer = &t
			variants = append(variants, variant{fmt.Sprintf("%d comparator banks", n), o})
		}
	default:
		fmt.Fprintf(os.Stderr, "jrpm-bench: unknown ablation %q\n", name)
		os.Exit(2)
	}

	fmt.Printf("Ablation: %s\n", name)
	fmt.Printf("%-14s", "benchmark")
	for _, v := range variants {
		fmt.Printf(" %28s", v.label)
	}
	fmt.Println()
	for _, bn := range benches {
		w := workloads.ByName(bn)
		build := w.Build
		if transformed[bn] {
			build = w.BuildTransformed
		}
		fmt.Printf("%-14s", bn)
		for _, v := range variants {
			res, err := core.Run(build(), v.opts)
			check(err)
			if !res.OutputsMatch {
				check(fmt.Errorf("%s: output mismatch under %q", bn, v.label))
			}
			fmt.Printf(" %27.2fx", res.SpeedupActual())
		}
		fmt.Println()
	}
}

// traceSuite runs every workload sequentially with the flight recorder
// attached and writes DIR/<name>.trace.json per workload (Perfetto format).
// Runs are sequential because each machine needs its own recorder ring.
func traceSuite(dir string) {
	check(os.MkdirAll(dir, 0o755))
	ring := obs.NewRingMasked(1<<20, obs.MaskDefault)
	for i, w := range workloads.All() {
		opts := baseOpts()
		if w.HeapWords > 0 {
			opts.VM.HeapWords = w.HeapWords
		}
		ring.Reset()
		opts.Recorder = ring
		res, err := core.Run(w.Build(), opts)
		check(err)
		path := filepath.Join(dir, w.Name+".trace.json")
		f, err := os.Create(path)
		check(err)
		err = obs.WriteChromeTrace(f, ring.Events(), opts.NCPU, w.Name)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		check(err)
		fmt.Fprintf(os.Stderr, "[%2d/%d] %s: %d events (%d dropped) -> %s (%.2fx)\n",
			i+1, len(workloads.All()), w.Name, ring.Total(), ring.Dropped(), path,
			res.SpeedupActual())
	}
}

// allocChurnProgram allocates an object on every iteration of a parallel
// loop — the access pattern that made the paper parallelize the memory
// allocator (§5.2): with a shared free list every speculative thread
// serializes on the list head.
func allocChurnProgram() *bytecode.Program {
	p := fe.NewProgram("allocChurn")
	box := p.Class("Box", "v", "w", "x", "y")
	p.Func("main", nil, false).Body(
		fe.Set("sum", fe.I(0)),
		fe.ForUp("i", fe.I(0), fe.I(256),
			fe.Set("b", fe.NewE(box)),
			fe.SetField(fe.L("b"), box, "v", fe.Mul(fe.L("i"), fe.I(3))),
			fe.Set("sum", fe.Add(fe.L("sum"), fe.FieldE(fe.L("b"), box, "v"))),
		),
		fe.Print(fe.L("sum")),
	)
	return p.MustBuild()
}
