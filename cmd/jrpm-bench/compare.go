package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"jrpm/internal/core"
	"jrpm/internal/workloads"
)

// benchEntry mirrors one record of a scripts/bench.sh snapshot
// (BENCH_pr*.json): per-benchmark host performance as ns/op, B/op and
// allocs/op.
type benchEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// runCompare re-measures the host wall time of every Table3Suite workload
// present in the baseline snapshot and gates on the geometric-mean ratio:
// above 1+tolerance the process exits nonzero, so CI can fail a PR that
// regresses simulator throughput. One pipeline run per workload matches the
// snapshot's -benchtime=1x convention; the geomean over the whole suite
// damps per-workload host noise.
func runCompare(path string, tolerance float64) {
	raw, err := os.ReadFile(path)
	check(err)
	var base map[string]benchEntry
	check(json.Unmarshal(raw, &base))

	var names []string
	for key := range base {
		name, ok := strings.CutPrefix(key, "Table3Suite/")
		if !ok || workloads.ByName(name) == nil {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		check(fmt.Errorf("compare: %s has no Table3Suite/<workload> entries", path))
	}
	sort.Strings(names)

	fmt.Printf("Host-performance comparison vs %s (tolerance %.0f%%)\n", path, 100*tolerance)
	fmt.Printf("%-16s %14s %14s %8s\n", "benchmark", "baseline ns", "measured ns", "ratio")
	logSum := 0.0
	for _, name := range names {
		w := workloads.ByName(name)
		opts := baseOpts()
		if w.HeapWords > 0 {
			opts.VM.HeapWords = w.HeapWords
		}
		bp := w.Build() // program construction is off the clock, as in bench.sh
		start := time.Now()
		res, err := core.Run(bp, opts)
		elapsed := float64(time.Since(start).Nanoseconds())
		check(err)
		if !res.OutputsMatch {
			check(fmt.Errorf("compare: %s: speculative output mismatch", name))
		}
		ratio := elapsed / base["Table3Suite/"+name].NsPerOp
		logSum += math.Log(ratio)
		fmt.Printf("%-16s %14.0f %14.0f %7.2fx\n",
			name, base["Table3Suite/"+name].NsPerOp, elapsed, ratio)
	}
	geomean := math.Exp(logSum / float64(len(names)))
	fmt.Printf("%-16s %14s %14s %7.2fx\n", "geomean", "", "", geomean)
	if geomean > 1+tolerance {
		fmt.Fprintf(os.Stderr, "jrpm-bench: host-performance regression: geomean %.2fx exceeds %.2fx\n",
			geomean, 1+tolerance)
		os.Exit(1)
	}
	fmt.Printf("within tolerance\n")
}
