// Command jrpm-serve runs the Jrpm simulator as a long-lived HTTP service
// with admission control, per-job deadlines, graceful degradation and
// graceful shutdown (see internal/serve).
//
// Usage:
//
//	jrpm-serve [-addr :8080] [-workers N] [-queue N] [-deadline D]
//	           [-maxdeadline D] [-cyclebudget N] [-grace D] [-metrics FILE]
//	           [-data DIR] [-checkpoint-every D]
//
// With -data the server is crash-durable: accepted jobs land in an fsync'd
// journal, running jobs write periodic safepoint checkpoints, and a restart
// replays the journal — finished jobs (and their result bytes) reappear, and
// interrupted ones re-enqueue, resuming mid-simulation from their latest
// checkpoint with bit-identical results.
//
// Endpoints:
//
//	POST /jobs             submit {"workload":"FourierTest"} or {"source":"program ...jasm..."}
//	GET  /jobs             list jobs
//	GET  /jobs/{id}        job status; ?wait=10s blocks until terminal
//	POST /jobs/{id}/cancel cancel a queued or running job
//	GET  /jobs/{id}/trace  Perfetto trace (jobs submitted with "trace":true)
//	GET  /breakers         per-workload circuit breakers
//	GET  /healthz          liveness      GET /readyz  readiness
//	GET  /metrics          Prometheus text metrics
//
// On SIGINT/SIGTERM the server stops admitting (readiness flips), drains
// in-flight jobs for the -grace period, then cancels stragglers on hydra's
// cancellation stride, flushes metrics and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jrpm/internal/buildinfo"
	"jrpm/internal/core"
	"jrpm/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	workers := flag.Int("workers", 0, "concurrent simulation workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth; beyond it submissions are shed with 503")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-job wall-clock deadline")
	maxDeadline := flag.Duration("maxdeadline", 2*time.Minute, "cap on client-requested deadlines")
	budget := flag.Int64("cyclebudget", 0, "simulated-cycle budget per run (0 = default 2e9)")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period before in-flight jobs are cancelled")
	metricsOut := flag.String("metrics", "", "flush Prometheus metrics to FILE on shutdown (\"-\" = stderr)")
	tier := flag.String("tier", "on", "tier-2 block engine for all jobs, on or off (results are bit-identical; off forces pure interpretation)")
	dataDir := flag.String("data", "", "crash-durability directory: journal accepted jobs, checkpoint running ones, and recover both on restart (empty = in-memory only)")
	ckptEvery := flag.Duration("checkpoint-every", 0, "period between safepoint checkpoints on running jobs (0 = 2s when -data is set)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Banner("jrpm-serve"))
		return
	}

	tierOff, err := core.ParseTierFlag(*tier)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrpm-serve:", err)
		os.Exit(2)
	}
	srv, rec, err := serve.Open(serve.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		MaxCycles:       *budget,
		Tier2Off:        tierOff,
		DataDir:         *dataDir,
		CheckpointEvery: *ckptEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrpm-serve:", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		fmt.Fprintf(os.Stderr, "jrpm-serve: durable in %s: recovered %d resumed, %d restarted, %d completed\n",
			*dataDir, rec.Resumed, rec.Restarted, rec.Completed)
	}
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrpm-serve:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "jrpm-serve: listening on %s (%d workers, queue %d, deadline %v)\n",
		ln.Addr(), srv.Config().Workers, srv.Config().QueueDepth, srv.Config().DefaultDeadline)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "jrpm-serve: %v: draining (grace %v)\n", sig, *grace)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "jrpm-serve: http:", err)
		os.Exit(1)
	}

	// Shutdown sequence: stop admissions and drain jobs first (so /readyz
	// flips immediately and in-flight work finishes or is cancelled), then
	// close the HTTP listener, then flush metrics.
	dctx, dcancel := context.WithTimeout(context.Background(), *grace)
	forced := srv.Shutdown(dctx)
	dcancel()
	if forced > 0 {
		fmt.Fprintf(os.Stderr, "jrpm-serve: grace expired; cancelled %d in-flight job(s)\n", forced)
	} else {
		fmt.Fprintln(os.Stderr, "jrpm-serve: drained cleanly")
	}
	hctx, hcancel := context.WithTimeout(context.Background(), 2*time.Second)
	hs.Shutdown(hctx)
	hcancel()

	if *metricsOut != "" {
		w := os.Stderr
		if *metricsOut != "-" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jrpm-serve:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := srv.Metrics().WritePrometheus(w); err != nil {
			fmt.Fprintln(os.Stderr, "jrpm-serve:", err)
			os.Exit(1)
		}
	}
}
