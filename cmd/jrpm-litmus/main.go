// Command jrpm-litmus model-checks the TLS coherence protocol
// (internal/litmus): exhaustive enumeration of small litmus configurations,
// a seeded random deep mode for larger ones, and replay/minimize for
// persisted counterexamples.
//
// Modes:
//
//	enumerate  exhaustively explore every test of one enumeration family
//	deep       random tests × random schedules, seeded
//	replay     re-run a persisted counterexample (or testdata pin)
//	minimize   shrink a persisted counterexample
//
// Exit codes: 0 clean, 1 divergence found (counterexample written),
// 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"jrpm/internal/buildinfo"
	"jrpm/internal/litmus"
)

func main() {
	var (
		mode      = flag.String("mode", "enumerate", "enumerate | deep | replay | minimize")
		threads   = flag.Int("threads", 2, "scripted iterations (= NCPU), 2-4")
		addrs     = flag.Int("addrs", 2, "footprint size, 1-4 shared words")
		length    = flag.Int("len", 2, "ops per script")
		vocab     = flag.String("vocab", "basic", "op vocabulary: basic | tracked")
		specials  = flag.Bool("specials", false, "cross with protocol ops (Partial/Drain/VioY/Demote/Switch/Stop/Track)")
		sameline  = flag.Bool("sameline", false, "pack the footprint into one cache line")
		tinyStore = flag.Int("tinystore", 0, "store buffer lines (0 = paper 64)")
		tinyLoad  = flag.Int("tinyload", 0, "load buffer lines (0 = paper 512)")
		chaos     = flag.Bool("chaos", false, "enable ChaosNoWordValid (oracle self-test: divergence expected)")
		noprune   = flag.Bool("noprune", false, "disable abstract-state revisit pruning")
		deadline  = flag.Duration("deadline", 0, "overall time bound (0 = none)")
		out       = flag.String("out", ".", "directory for counterexample JSON")
		caseFile  = flag.String("case", "", "counterexample file (replay/minimize modes)")
		seed      = flag.Uint64("seed", 1, "deep mode PRNG seed")
		tests     = flag.Int("tests", 256, "deep mode: number of random tests")
		schedules = flag.Int("schedules", 64, "deep mode: random schedules per test")
		budget    = flag.Int("budget", 400, "minimize mode: exploration budget")
		verbose   = flag.Bool("v", false, "per-test progress")
	)
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Banner("jrpm-litmus"))
		return
	}

	opt := litmus.Options{NoPrune: *noprune}
	if *deadline > 0 {
		opt.Deadline = time.Now().Add(*deadline)
	}
	spec := litmus.EnumSpec{
		Threads:    *threads,
		Addrs:      *addrs,
		Len:        *length,
		SameLine:   *sameline,
		StoreLines: *tinyStore,
		LoadLines:  *tinyLoad,
		Chaos:      *chaos,
		Specials:   *specials,
	}
	switch *vocab {
	case "basic":
		spec.Vocab = litmus.VocabBasic
	case "tracked":
		spec.Vocab = litmus.VocabTracked
	default:
		fmt.Fprintf(os.Stderr, "jrpm-litmus: unknown vocab %q\n", *vocab)
		os.Exit(2)
	}

	switch *mode {
	case "enumerate":
		os.Exit(runEnumerate(spec, opt, *out, *budget, *verbose))
	case "deep":
		os.Exit(runDeep(spec, opt, *out, *seed, *tests, *schedules, *budget, *verbose))
	case "replay":
		os.Exit(runReplay(*caseFile, opt))
	case "minimize":
		os.Exit(runMinimize(*caseFile, opt, *out, *budget))
	default:
		fmt.Fprintf(os.Stderr, "jrpm-litmus: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// report minimizes a divergence, prints its timeline, and persists it.
func report(div *litmus.Counterexample, opt litmus.Options, out string, budget int) {
	fmt.Printf("DIVERGENCE %s in %s: %s\n", div.Check, div.Test.Name, div.Detail)
	minTest, minCE := litmus.Minimize(&div.Test, div.Check, opt, budget)
	if minCE != nil {
		div = minCE
		div.Test = *minTest
	}
	fmt.Println(div.Timeline)
	path := filepath.Join(out, fmt.Sprintf("litmus-%s-%d.json", div.Check, time.Now().Unix()))
	if err := litmus.WriteCounterexample(path, div); err != nil {
		fmt.Fprintf(os.Stderr, "jrpm-litmus: writing counterexample: %v\n", err)
		return
	}
	fmt.Printf("counterexample written to %s\n", path)
}

func runEnumerate(spec litmus.EnumSpec, opt litmus.Options, out string, budget int, verbose bool) int {
	start := time.Now()
	var nTests, nSchedules, nPruned int
	var nSteps int64
	var div *litmus.Counterexample
	timedOut := false
	spec.Enumerate(func(t *litmus.Test) bool {
		if !opt.Deadline.IsZero() && time.Now().After(opt.Deadline) {
			timedOut = true
			return false
		}
		res, err := litmus.Explore(t, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jrpm-litmus: %s: %v\n", t.Name, err)
			div = &litmus.Counterexample{Check: "invalid-test", Detail: err.Error(), Test: *t}
			return false
		}
		nTests++
		nSchedules += res.Schedules
		nPruned += res.Pruned
		nSteps += res.Steps
		if verbose && nTests%500 == 0 {
			fmt.Printf("  %d tests, %d schedules, %d pruned, %d steps (%.1fs)\n",
				nTests, nSchedules, nPruned, nSteps, time.Since(start).Seconds())
		}
		if res.Div != nil {
			div = res.Div
			return false
		}
		return true
	})
	fmt.Printf("enumerate %dt/%da/len%d: %d/%d tests, %d schedules (+%d pruned), %d steps in %v\n",
		spec.Threads, spec.Addrs, spec.Len, nTests, spec.Count(), nSchedules, nPruned, nSteps,
		time.Since(start).Round(time.Millisecond))
	if div != nil {
		report(div, opt, out, budget)
		return 1
	}
	if timedOut {
		fmt.Printf("deadline reached: covered %d of %d tests, no divergence in the covered set\n", nTests, spec.Count())
	}
	return 0
}

// runDeep samples random tests from the spec's vocabulary (plus optionally
// one random special per test) and runs random schedules over each.
func runDeep(spec litmus.EnumSpec, opt litmus.Options, out string, seed uint64, tests, schedules, budget int, verbose bool) int {
	start := time.Now()
	var nSteps int64
	rng := seed
	for i := 0; i < tests; i++ {
		if !opt.Deadline.IsZero() && time.Now().After(opt.Deadline) {
			fmt.Printf("deadline reached after %d of %d tests\n", i, tests)
			break
		}
		t := litmus.RandomTest(spec, &rng, i)
		res, err := litmus.Deep(t, rng, schedules, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jrpm-litmus: %s: %v\n", t.Name, err)
			return 2
		}
		nSteps += res.Steps
		if verbose && (i+1)%100 == 0 {
			fmt.Printf("  %d tests, %d steps (%.1fs)\n", i+1, nSteps, time.Since(start).Seconds())
		}
		if res.Div != nil {
			fmt.Printf("deep sweep: %d tests, %d steps in %v\n", i+1, nSteps, time.Since(start).Round(time.Millisecond))
			report(res.Div, opt, out, budget)
			return 1
		}
	}
	fmt.Printf("deep sweep: %d tests x %d schedules, %d steps in %v, no divergence\n",
		tests, schedules, nSteps, time.Since(start).Round(time.Millisecond))
	return 0
}

func runReplay(caseFile string, opt litmus.Options) int {
	if caseFile == "" {
		fmt.Fprintln(os.Stderr, "jrpm-litmus: replay requires -case FILE")
		return 2
	}
	pc, err := litmus.ReadPinnedCase(caseFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jrpm-litmus: %v\n", err)
		return 2
	}
	ok, msg := litmus.CheckPinnedCase(pc, opt)
	if ok {
		if pc.ExpectDiverge {
			fmt.Printf("replay %s: diverged with %s as expected (oracle self-test)\n", caseFile, pc.Check)
		} else {
			fmt.Printf("replay %s: clean\n", caseFile)
		}
		return 0
	}
	fmt.Printf("replay %s: %s\n", caseFile, msg)
	return 1
}

func runMinimize(caseFile string, opt litmus.Options, out string, budget int) int {
	if caseFile == "" {
		fmt.Fprintln(os.Stderr, "jrpm-litmus: minimize requires -case FILE")
		return 2
	}
	pc, err := litmus.ReadPinnedCase(caseFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jrpm-litmus: %v\n", err)
		return 2
	}
	res, err := litmus.Explore(&pc.Test, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jrpm-litmus: %v\n", err)
		return 2
	}
	if res.Div == nil {
		fmt.Printf("minimize %s: test no longer diverges; nothing to shrink\n", caseFile)
		return 0
	}
	minTest, minCE := litmus.Minimize(&pc.Test, res.Div.Check, opt, budget)
	if minCE == nil {
		fmt.Printf("minimize %s: could not reproduce %s within budget\n", caseFile, res.Div.Check)
		return 2
	}
	minCE.Test = *minTest
	fmt.Println(minCE.Timeline)
	path := filepath.Join(out, "minimized-"+filepath.Base(caseFile))
	if err := litmus.WriteCounterexample(path, minCE); err != nil {
		fmt.Fprintf(os.Stderr, "jrpm-litmus: %v\n", err)
		return 2
	}
	fmt.Printf("minimized counterexample written to %s\n", path)
	return 1
}
