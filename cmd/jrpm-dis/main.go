// Command jrpm-dis disassembles a workload: the bytecode the frontend
// produced and the native code microJIT emits in each compilation mode.
// With -blocks it additionally prints the tier-2 block layout — how the
// block engine would carve each method into fused superinstruction blocks.
//
// Usage:
//
//	jrpm-dis [-mode plain|annotated|tls] [-method NAME] [-blocks] WORKLOAD
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"jrpm/internal/analyzer"
	"jrpm/internal/buildinfo"
	"jrpm/internal/bytecode"
	"jrpm/internal/cfg"
	"jrpm/internal/hydra"
	"jrpm/internal/isa"
	"jrpm/internal/jit"
	"jrpm/internal/vm"
	"jrpm/internal/workloads"
)

func main() {
	mode := flag.String("mode", "plain", "compilation mode: plain, annotated or tls")
	method := flag.String("method", "", "only this method")
	blocks := flag.Bool("blocks", false, "print the tier-2 block layout of each method")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Banner("jrpm-dis"))
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: jrpm-dis [-mode plain|annotated|tls] [-method NAME] [-blocks] WORKLOAD")
		os.Exit(2)
	}
	w := workloads.ByName(flag.Arg(0))
	if w == nil {
		fmt.Fprintf(os.Stderr, "jrpm-dis: unknown workload %q\n", flag.Arg(0))
		os.Exit(2)
	}
	bp := jit.Inline(w.Build()) // match the pipeline's pre-pass
	info := cfg.AnalyzeProgram(bp)

	jm := jit.ModePlain
	var sel *jit.Selection
	switch *mode {
	case "plain":
	case "annotated":
		jm = jit.ModeAnnotated
	case "tls":
		jm = jit.ModeTLS
		sel = selectFor(bp, info)
	default:
		fmt.Fprintf(os.Stderr, "jrpm-dis: bad mode %q\n", *mode)
		os.Exit(2)
	}

	fmt.Printf("== %s: bytecode ==\n", bp.Name)
	for _, m := range bp.Methods {
		if *method != "" && m.Name != *method {
			continue
		}
		fmt.Println(bytecode.Disassemble(m))
	}

	img, rep, err := jit.Compile(bp, info, jm, sel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrpm-dis:", err)
		os.Exit(1)
	}
	fmt.Printf("== %s: native code (%s mode, %d instructions, modelled compile %d cycles) ==\n",
		bp.Name, *mode, rep.CodeSize, rep.Cycles)
	for _, m := range img.Methods {
		if *method != "" && m.Name != *method {
			continue
		}
		fmt.Printf("method %q (frame %d words, saved %v)\n", m.Name, m.FrameWords, m.SavedRegs)
		fmt.Print(isa.Disassemble(m.Code))
		for _, h := range m.Handlers {
			fmt.Printf("  catch kind=%d [%d,%d) -> %d\n", h.Kind, h.Start, h.End, h.Target)
		}
	}
	if jm == jit.ModeTLS {
		for id, d := range img.STLs {
			fmt.Printf("STL %d: loop %d, method %d, init pc %d, body [%d,%d), inner=%v hoisted=%v\n",
				id, d.LoopID, d.Method, d.InitPC, d.BodyStart, d.BodyEnd, d.Inner, d.Hoisted)
		}
	}
	if *blocks {
		printBlocks(img, *method)
	}
}

// printBlocks renders the tier-2 block layout: one line per block with its
// entry pc, instruction span, fused dispatch units, and summed static cost.
// Boundary pcs (scheduler/runtime ops the engine never fuses) are listed
// with the demotion bucket they charge.
func printBlocks(img *hydra.Image, method string) {
	fmt.Printf("== %s: tier-2 block layout ==\n", img.Name)
	for id, m := range img.Methods {
		if method != "" && m.Name != method {
			continue
		}
		fmt.Printf("method %q\n", m.Name)
		for _, b := range hydra.BlockLayout(img, id) {
			if b.Boundary != "" {
				fmt.Printf("  pc %4d  boundary (%s)\n", b.EntryPC, b.Boundary)
				continue
			}
			fmt.Printf("  pc %4d  len %2d  ops %2d  cost %3d  mem %d  %s\n",
				b.EntryPC, b.Len, b.Ops, b.Cost, b.MemOps, strings.Join(b.Fused, " "))
		}
	}
}

// selectFor runs the profile+analysis half of the pipeline to obtain the
// selection the TLS recompilation would use.
func selectFor(bp *bytecode.Program, info *cfg.ProgramInfo) *jit.Selection {
	img, _, err := jit.Compile(bp, info, jit.ModeAnnotated, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrpm-dis:", err)
		os.Exit(1)
	}
	rt := vm.New(bp, vm.DefaultConfig())
	opts := hydra.DefaultOptions()
	opts.Profile = true
	m := hydra.NewMachine(img, rt, opts)
	m.Boot()
	rt.Install(m)
	if err := m.Run(2_000_000_000); err != nil {
		fmt.Fprintln(os.Stderr, "jrpm-dis: profiling run:", err)
		os.Exit(1)
	}
	res := analyzer.Select(info, m.Tracer.Loops(), m.Clock, analyzer.DefaultConfig())
	return res.Selection
}
