// Command jrpm-doctor runs one workload (or a .jasm program) through the
// full Jrpm pipeline with the speculation doctor attached and prints the
// diagnosis: a per-loop cycle-conservation ledger (every simulated cycle of
// every CPU attributed to exactly one bucket), violation sites symbolized
// back to bytecode locals and statics and ranked by discarded cycles, the
// §4.2 transformation hint for each site, and the analyzer's per-loop
// selection reasoning.
//
// Usage:
//
//	jrpm-doctor -w compress
//	jrpm-doctor [-cpus N] [-guard] [-faults PLAN] [-json] [-o FILE] program.jasm
//
// The ledger is passive: attaching it does not change a single simulated
// cycle, so the doctor's numbers describe exactly the run you would get
// without it. -json emits the machine-readable report instead of text.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"jrpm/internal/buildinfo"
	"jrpm/internal/bytecode"
	"jrpm/internal/core"
	"jrpm/internal/diagnose"
	"jrpm/internal/faultinject"
	"jrpm/internal/tls"
	"jrpm/internal/workloads"
)

func main() {
	wname := flag.String("w", "", "workload name from the benchmark suite (see -list)")
	out := flag.String("o", "-", "report output path (\"-\" = stdout)")
	asJSON := flag.Bool("json", false, "emit the machine-readable JSON report instead of text")
	cpus := flag.Int("cpus", 4, "number of CPUs")
	guard := flag.Bool("guard", false, "enable the STL violation-storm guard")
	faults := flag.String("faults", "", "fault-injection plan, e.g. seed=42,raw=0.01")
	list := flag.Bool("list", false, "list workload names and exit")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Banner("jrpm-doctor"))
		return
	}

	if *list {
		for _, w := range workloads.All() {
			fmt.Println(w.Name)
		}
		return
	}

	opts := core.DefaultOptions()
	opts.NCPU = *cpus
	opts.Diagnose = true
	if *guard {
		cfg := tls.DefaultGuardConfig()
		opts.Guard = &cfg
	}
	if *faults != "" {
		plan, err := faultinject.Parse(*faults)
		fail(err)
		opts.Faults = &plan
	}

	var prog *bytecode.Program
	var name string
	switch {
	case *wname != "":
		w := workloads.ByName(*wname)
		if w == nil {
			fmt.Fprintf(os.Stderr, "jrpm-doctor: unknown workload %q (try -list)\n", *wname)
			os.Exit(2)
		}
		if w.HeapWords > 0 {
			opts.VM.HeapWords = w.HeapWords
		}
		prog = w.Build()
		name = w.Name
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		fail(err)
		prog, err = bytecode.Parse(string(src))
		fail(err)
		name = strings.TrimSuffix(filepath.Base(flag.Arg(0)), ".jasm")
	default:
		fmt.Fprintln(os.Stderr, "usage: jrpm-doctor [-w NAME | program.jasm] [-cpus N] [-guard] [-faults PLAN] [-json] [-o FILE]")
		os.Exit(2)
	}

	res, err := core.Run(prog, opts)
	fail(err)
	res.Name = name
	rep, err := diagnose.Build(res)
	fail(err)

	w := os.Stdout
	if *out != "-" && *out != "" {
		f, err := os.Create(*out)
		fail(err)
		defer f.Close()
		w = f
	}
	if *asJSON {
		_, err = w.Write(rep.JSON())
		fail(err)
	} else {
		rep.WriteText(w)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrpm-doctor:", err)
		os.Exit(1)
	}
}
