// Command jrpm-run executes a program written in the textual bytecode
// assembly (see internal/bytecode.Parse for the format) through the full
// Jrpm pipeline — the way a user would run their own code on the system.
//
// Usage:
//
//	jrpm-run [-cpus N] [-seq] [-faults PLAN] [-cyclebudget N] [-guard]
//	         [-timeout D] [-trace FILE] [-metrics -|FILE] [-http ADDR]
//	         [-explain] program.jasm
//
// With -seq only the sequential baseline runs (no speculation). A -faults
// plan (e.g. "seed=42,raw=0.01,overflow=0.005") injects deterministic faults
// into the speculative run and cross-checks its architectural state against
// the sequential oracle; -cyclebudget bounds every run with the watchdog;
// -guard enables the STL violation-storm guard; -timeout bounds the whole
// run in wall-clock time (exit status 3 on timeout or ^C, vs 1 for a
// simulation error).
//
// Observability: -trace writes the speculative run's flight-recorder events
// as Chrome trace-event JSON (Perfetto-viewable), -metrics dumps the run's
// typed metrics in Prometheus text format ("-" = stdout), and -http serves
// net/http/pprof and expvar (including the metrics snapshot under the
// "jrpm" expvar once the run finishes) on the given address, e.g. :6060,
// for live profiling while the simulation runs. -explain attaches the
// speculation doctor's per-loop cycle ledger (timing is bit-identical with
// or without it) and prints the diagnosis report after the run.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"jrpm/internal/buildinfo"
	"jrpm/internal/bytecode"
	"jrpm/internal/core"
	"jrpm/internal/diagnose"
	"jrpm/internal/faultinject"
	"jrpm/internal/hydra"
	"jrpm/internal/obs"
	"jrpm/internal/tls"
)

// exitTimeout distinguishes "the run was cut short" (wall-clock timeout or
// interrupt) from a simulation error (exit 1) and a usage error (exit 2),
// so scripts can tell a slow program from a broken one.
const exitTimeout = 3

// exitCode classifies a pipeline error for the process exit status.
func exitCode(err error) int {
	if errors.Is(err, hydra.ErrCancelled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) {
		return exitTimeout
	}
	return 1
}

// liveMetrics backs the "jrpm" expvar: nil until the pipeline completes.
var liveMetrics atomic.Pointer[obs.Registry]

func main() {
	cpus := flag.Int("cpus", 4, "number of CPUs")
	seq := flag.Bool("seq", false, "sequential run only")
	faults := flag.String("faults", "", "fault-injection plan, e.g. seed=42,raw=0.01,overflow=0.005,bus=0.02,busdelay=12,heap=0.001,jit=0")
	budget := flag.Int64("cyclebudget", 0, "cycle-budget watchdog for each run (0 = default 2e9)")
	guard := flag.Bool("guard", false, "enable the STL violation-storm guard (sequential fallback for thrashing loops)")
	trace := flag.String("trace", "", "write the speculative run's Chrome trace-event JSON to FILE")
	metrics := flag.String("metrics", "", "write Prometheus text metrics to FILE (\"-\" = stdout)")
	httpAddr := flag.String("http", "", "serve net/http/pprof and expvar on ADDR (e.g. :6060) during the run")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline for the whole run (0 = none); exceeding it exits with status 3")
	tier := flag.String("tier", "on", "tier-2 block engine, on or off: compile hot straight-line runs into fused superinstructions (results are bit-identical; off forces pure interpretation)")
	explain := flag.Bool("explain", false, "attach the speculation doctor's cycle-conservation ledger and print its diagnosis (per-loop verdicts, ranked violation sites, decomposition reasoning) to stderr")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Banner("jrpm-run"))
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: jrpm-run [-cpus N] [-seq] [-tier=off] [-faults PLAN] [-cyclebudget N] [-guard] [-timeout D] [-trace FILE] [-metrics -|FILE] [-http ADDR] [-explain] program.jasm")
		os.Exit(2)
	}
	// SIGINT/SIGTERM and -timeout both flow through the same context that
	// hydra polls on its cancellation stride, so ^C interrupts a runaway
	// simulation cleanly instead of killing the process mid-report.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, *timeout,
			fmt.Errorf("%w: -timeout %v elapsed", context.DeadlineExceeded, *timeout))
		defer cancel()
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrpm-run:", err)
		os.Exit(1)
	}
	prog, err := bytecode.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrpm-run:", err)
		os.Exit(1)
	}
	tierOff, err := core.ParseTierFlag(*tier)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrpm-run:", err)
		os.Exit(2)
	}
	opts := core.DefaultOptions()
	opts.Ctx = ctx
	opts.NCPU = *cpus
	opts.Tier2Off = tierOff
	if *budget > 0 {
		opts.MaxCycles = *budget
	}
	if *faults != "" {
		plan, err := faultinject.Parse(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jrpm-run:", err)
			os.Exit(2)
		}
		opts.Faults = &plan
	}
	if *guard {
		cfg := tls.DefaultGuardConfig()
		opts.Guard = &cfg
	}
	opts.Diagnose = *explain
	if *httpAddr != "" {
		expvar.Publish("jrpm", expvar.Func(func() any {
			if reg := liveMetrics.Load(); reg != nil {
				return reg.Snapshot()
			}
			return nil
		}))
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "jrpm-run: http:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "serving pprof/expvar on %s\n", *httpAddr)
	}
	var ring *obs.Ring
	if *trace != "" {
		ring = obs.NewRingMasked(1<<20, obs.MaskDefault)
		opts.Recorder = ring
	}
	res, err := core.Run(prog, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrpm-run:", err)
		os.Exit(exitCode(err))
	}
	if !res.OutputsMatch {
		fmt.Fprintln(os.Stderr, "jrpm-run: internal error: speculative output mismatch")
		os.Exit(1)
	}
	for _, v := range res.TLS.Output {
		fmt.Println(v)
	}
	if ring != nil {
		f, err := os.Create(*trace)
		if err == nil {
			err = obs.WriteChromeTrace(f, ring.Events(), opts.NCPU, res.Name)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "jrpm-run: trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events (%d dropped) written to %s\n",
			ring.Total(), ring.Dropped(), *trace)
	}
	if *metrics != "" {
		reg := res.Metrics()
		if ring != nil {
			obs.SummarizeEvents(reg, ring.Events())
		}
		liveMetrics.Store(reg)
		w := os.Stdout
		if *metrics != "-" {
			f, err := os.Create(*metrics)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jrpm-run:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := reg.WritePrometheus(w); err != nil {
			fmt.Fprintln(os.Stderr, "jrpm-run:", err)
			os.Exit(1)
		}
	}
	if *seq {
		fmt.Fprintf(os.Stderr, "sequential: %d cycles\n", res.Seq.Cycles)
		return
	}
	fmt.Fprintf(os.Stderr, "sequential: %d cycles; speculative: %d cycles (%.2fx on %d CPUs)\n",
		res.Seq.Cycles, res.TLS.Cycles, res.SpeedupActual(), *cpus)
	if len(res.TLS.FaultsFired) > 0 {
		fmt.Fprintf(os.Stderr, "faults fired: %v; oracle checked: %v\n", res.TLS.FaultsFired, res.OracleChecked)
	}
	if res.JITFallback {
		fmt.Fprintln(os.Stderr, "TLS recompilation failed; speculative phase ran the sequential image")
	}
	for _, id := range res.TLS.DecertifiedLoops {
		fmt.Fprintf(os.Stderr, "guard: loop %d decertified (running sequentially)\n", id)
	}
	if *explain {
		rep, err := diagnose.Build(res)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jrpm-run:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr)
		rep.WriteText(os.Stderr)
	}
}
