// Command jrpm-run executes a program written in the textual bytecode
// assembly (see internal/bytecode.Parse for the format) through the full
// Jrpm pipeline — the way a user would run their own code on the system.
//
// Usage:
//
//	jrpm-run [-cpus N] [-seq] [-faults PLAN] [-cyclebudget N] [-guard] program.jasm
//
// With -seq only the sequential baseline runs (no speculation). A -faults
// plan (e.g. "seed=42,raw=0.01,overflow=0.005") injects deterministic faults
// into the speculative run and cross-checks its architectural state against
// the sequential oracle; -cyclebudget bounds every run with the watchdog;
// -guard enables the STL violation-storm guard.
package main

import (
	"flag"
	"fmt"
	"os"

	"jrpm/internal/bytecode"
	"jrpm/internal/core"
	"jrpm/internal/faultinject"
	"jrpm/internal/tls"
)

func main() {
	cpus := flag.Int("cpus", 4, "number of CPUs")
	seq := flag.Bool("seq", false, "sequential run only")
	faults := flag.String("faults", "", "fault-injection plan, e.g. seed=42,raw=0.01,overflow=0.005,bus=0.02,busdelay=12,heap=0.001,jit=0")
	budget := flag.Int64("cyclebudget", 0, "cycle-budget watchdog for each run (0 = default 2e9)")
	guard := flag.Bool("guard", false, "enable the STL violation-storm guard (sequential fallback for thrashing loops)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: jrpm-run [-cpus N] [-seq] [-faults PLAN] [-cyclebudget N] [-guard] program.jasm")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrpm-run:", err)
		os.Exit(1)
	}
	prog, err := bytecode.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrpm-run:", err)
		os.Exit(1)
	}
	opts := core.DefaultOptions()
	opts.NCPU = *cpus
	if *budget > 0 {
		opts.MaxCycles = *budget
	}
	if *faults != "" {
		plan, err := faultinject.Parse(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jrpm-run:", err)
			os.Exit(2)
		}
		opts.Faults = &plan
	}
	if *guard {
		cfg := tls.DefaultGuardConfig()
		opts.Guard = &cfg
	}
	res, err := core.Run(prog, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrpm-run:", err)
		os.Exit(1)
	}
	if !res.OutputsMatch {
		fmt.Fprintln(os.Stderr, "jrpm-run: internal error: speculative output mismatch")
		os.Exit(1)
	}
	for _, v := range res.TLS.Output {
		fmt.Println(v)
	}
	if *seq {
		fmt.Fprintf(os.Stderr, "sequential: %d cycles\n", res.Seq.Cycles)
		return
	}
	fmt.Fprintf(os.Stderr, "sequential: %d cycles; speculative: %d cycles (%.2fx on %d CPUs)\n",
		res.Seq.Cycles, res.TLS.Cycles, res.SpeedupActual(), *cpus)
	if len(res.TLS.FaultsFired) > 0 {
		fmt.Fprintf(os.Stderr, "faults fired: %v; oracle checked: %v\n", res.TLS.FaultsFired, res.OracleChecked)
	}
	if res.JITFallback {
		fmt.Fprintln(os.Stderr, "TLS recompilation failed; speculative phase ran the sequential image")
	}
	for _, id := range res.TLS.DecertifiedLoops {
		fmt.Fprintf(os.Stderr, "guard: loop %d decertified (running sequentially)\n", id)
	}
}
