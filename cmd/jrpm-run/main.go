// Command jrpm-run executes a program written in the textual bytecode
// assembly (see internal/bytecode.Parse for the format) through the full
// Jrpm pipeline — the way a user would run their own code on the system.
//
// Usage:
//
//	jrpm-run [-cpus N] [-seq] program.jasm
//
// With -seq only the sequential baseline runs (no speculation).
package main

import (
	"flag"
	"fmt"
	"os"

	"jrpm/internal/bytecode"
	"jrpm/internal/core"
)

func main() {
	cpus := flag.Int("cpus", 4, "number of CPUs")
	seq := flag.Bool("seq", false, "sequential run only")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: jrpm-run [-cpus N] [-seq] program.jasm")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrpm-run:", err)
		os.Exit(1)
	}
	prog, err := bytecode.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrpm-run:", err)
		os.Exit(1)
	}
	opts := core.DefaultOptions()
	opts.NCPU = *cpus
	res, err := core.Run(prog, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jrpm-run:", err)
		os.Exit(1)
	}
	if !res.OutputsMatch {
		fmt.Fprintln(os.Stderr, "jrpm-run: internal error: speculative output mismatch")
		os.Exit(1)
	}
	for _, v := range res.TLS.Output {
		fmt.Println(v)
	}
	if *seq {
		fmt.Fprintf(os.Stderr, "sequential: %d cycles\n", res.Seq.Cycles)
		return
	}
	fmt.Fprintf(os.Stderr, "sequential: %d cycles; speculative: %d cycles (%.2fx on %d CPUs)\n",
		res.Seq.Cycles, res.TLS.Cycles, res.SpeedupActual(), *cpus)
}
