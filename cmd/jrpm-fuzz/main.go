// Command jrpm-fuzz drives the differential speculation conformance suite
// (internal/progen) outside the go test harness: it generates seeded random
// programs, runs every one through the seq-vs-TLS differential oracle, and
// on divergence shrinks the program to a minimal reproducer and writes it
// to a corpus directory.
//
// Usage:
//
//	jrpm-fuzz [flags]
//	jrpm-fuzz -repro FILE
//
// Flags:
//
//	-seeds N      number of seeds to check (default 2000)
//	-start N      first seed (default 1)
//	-duration D   stop after D regardless of -seeds (0 = no time limit)
//	-jobs N       parallel checker goroutines (default GOMAXPROCS)
//	-size NAME    generator size: quick, small, stress or large (default small)
//	-cpus N       simulated CPUs per check (default 4)
//	-maxcycles N  per-run simulated cycle budget (default 50M)
//	-repros DIR   where to write minimized reproducers
//	-budget N     shrink budget, in harness evaluations (default 600)
//	-chaos        enable the ChaosNoWordValid self-test bug (divergences expected)
//	-quick        skip the rerun/faults/solo legs (seq-vs-TLS only)
//	-v            log every seed, not just divergences
//	-repro FILE   replay one reproducer JSON and exit (0 = still diverges
//	              as recorded, 1 = verdict changed)
//
// Exit status: 0 when every seed conforms (or, with -repro, the recorded
// verdict still holds), 1 on any divergence, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"jrpm/internal/buildinfo"
	"jrpm/internal/progen"
)

func main() {
	seeds := flag.Int64("seeds", 2000, "number of seeds to check")
	start := flag.Int64("start", 1, "first seed")
	duration := flag.Duration("duration", 0, "stop after this long (0 = no limit)")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel checker goroutines")
	size := flag.String("size", "small", "generator size: quick, small, stress, large")
	cpus := flag.Int("cpus", 4, "simulated CPUs per check")
	maxCycles := flag.Int64("maxcycles", 50_000_000, "per-run simulated cycle budget (livelocks under an injected bug count as divergences)")
	reproDir := flag.String("repros", "internal/progen/testdata/repros", "directory for minimized reproducers")
	budget := flag.Int("budget", 600, "shrink budget (harness evaluations)")
	chaos := flag.Bool("chaos", false, "enable the ChaosNoWordValid self-test bug")
	quick := flag.Bool("quick", false, "skip the rerun/faults/solo legs")
	verbose := flag.Bool("v", false, "log every seed")
	reproFile := flag.String("repro", "", "replay one reproducer JSON and exit")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Banner("jrpm-fuzz"))
		return
	}

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "jrpm-fuzz: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}
	if *reproFile != "" {
		os.Exit(replay(*reproFile))
	}

	cfg, err := progen.ConfigByName(*size)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jrpm-fuzz: %v\n", err)
		os.Exit(2)
	}
	cc := progen.DefaultCheckConfig()
	cc.NCPU = *cpus
	cc.MaxCycles = *maxCycles
	cc.Chaos = *chaos
	if *quick {
		cc.Rerun, cc.Faults, cc.Solo = false, false, false
	}

	var deadline time.Time
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}

	var (
		mu        sync.Mutex // serializes shrinking and reporting
		checked   atomic.Int64
		diverged  atomic.Int64
		next      atomic.Int64
		wg        sync.WaitGroup
		startTime = time.Now()
	)
	next.Store(*start)
	last := *start + *seeds // exclusive

	if *jobs < 1 {
		*jobs = 1
	}
	for w := 0; w < *jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seed := next.Add(1) - 1
				if seed >= last {
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				p := progen.Generate(seed, cfg)
				v := progen.Check(p, cc)
				checked.Add(1)
				if !v.Diverged() {
					if *verbose {
						mu.Lock()
						fmt.Printf("seed %d ok (%d checks, %d commits, %d violations)\n",
							seed, v.Checks, v.Commits, v.Violations)
						mu.Unlock()
					}
					continue
				}
				diverged.Add(1)
				mu.Lock()
				fmt.Printf("seed %d DIVERGED on leg %q: %s\n", seed, v.Divergence, v.Detail)
				sr := progen.Shrink(p, cc, *budget)
				if sr.Verdict.Diverged() {
					path, werr := progen.NewRepro(sr, cc).Write(*reproDir)
					if werr != nil {
						fmt.Fprintf(os.Stderr, "jrpm-fuzz: writing reproducer: %v\n", werr)
					} else {
						fmt.Printf("  minimized to %d instructions (%d in kernel) after %d edits / %d checks → %s\n",
							sr.Total, sr.Kernel, sr.Steps, sr.Checks, path)
					}
				} else {
					fmt.Printf("  shrink lost the divergence after %d checks; keeping the original seed\n",
						sr.Checks)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	n, d := checked.Load(), diverged.Load()
	fmt.Printf("jrpm-fuzz: %d seeds checked in %s, %d divergences (size=%s cpus=%d chaos=%v)\n",
		n, time.Since(startTime).Round(time.Millisecond), d, *size, *cpus, *chaos)
	if d > 0 {
		os.Exit(1)
	}
}

// replay re-runs one stored reproducer and reports whether the recorded
// verdict still holds.
func replay(path string) int {
	r, err := progen.LoadRepro(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jrpm-fuzz: %v\n", err)
		return 2
	}
	v := r.Recheck()
	fmt.Printf("recorded: leg %q (%s)\n", r.Divergence, r.Detail)
	if v.Diverged() {
		fmt.Printf("current:  leg %q (%s)\n", v.Divergence, v.Detail)
	} else {
		fmt.Printf("current:  conformant (%d checks)\n", v.Checks)
	}
	if v.Divergence == r.Divergence {
		fmt.Println("verdict unchanged")
		return 0
	}
	fmt.Println("VERDICT CHANGED")
	return 1
}
