// Command jrpm runs benchmark programs through the full Java runtime
// parallelizing machine pipeline (Figure 1): annotated compilation, TEST
// profiling, decomposition selection, TLS recompilation and speculative
// execution — reporting speedups, overheads and per-loop decisions.
//
// Usage:
//
//	jrpm [flags] [workload ...]
//
// With no arguments the whole Table 3 suite runs. Flags:
//
//	-cpus N        number of CPUs (default 4)
//	-old           use the previous-generation TLS handlers (Table 1 "Old")
//	-transformed   run the Table 4 manually transformed variant
//	-loops         print the analyzer's per-loop decisions
//	-noalloc       disable per-CPU speculative free lists (§5.2)
//	-nolocks       disable speculation-aware object locks (§5.3)
package main

import (
	"flag"
	"fmt"
	"os"

	"jrpm/internal/buildinfo"
	"jrpm/internal/core"
	"jrpm/internal/tls"
	"jrpm/internal/workloads"
)

func main() {
	cpus := flag.Int("cpus", 4, "number of CPUs")
	old := flag.Bool("old", false, "use old-generation TLS handlers")
	transformed := flag.Bool("transformed", false, "run the Table 4 transformed variant")
	loops := flag.Bool("loops", false, "print per-loop analyzer decisions")
	noalloc := flag.Bool("noalloc", false, "disable per-CPU speculative free lists")
	nolocks := flag.Bool("nolocks", false, "disable speculation-aware object locks")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Banner("jrpm"))
		return
	}

	opts := core.DefaultOptions()
	opts.NCPU = *cpus
	if *old {
		opts.Handlers = tls.OldHandlers
	}
	opts.VM.ParallelAlloc = !*noalloc
	opts.VM.ElideLocks = !*nolocks

	names := flag.Args()
	if len(names) == 0 {
		for _, w := range workloads.All() {
			names = append(names, w.Name)
		}
	}
	fmt.Printf("%-14s %9s %9s %9s %9s %9s %6s\n",
		"benchmark", "seq(cyc)", "speedup", "predict", "total", "profile%", "viol")
	for _, name := range names {
		w := workloads.ByName(name)
		if w == nil {
			fmt.Fprintf(os.Stderr, "jrpm: unknown workload %q\n", name)
			os.Exit(2)
		}
		build := w.Build
		if *transformed {
			if w.BuildTransformed == nil {
				fmt.Fprintf(os.Stderr, "jrpm: %s has no transformed variant\n", name)
				os.Exit(2)
			}
			build = w.BuildTransformed
		}
		res, err := core.Run(build(), opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jrpm: %s: %v\n", name, err)
			os.Exit(1)
		}
		status := ""
		if !res.OutputsMatch {
			status = "  OUTPUT MISMATCH"
		}
		fmt.Printf("%-14s %9d %8.2fx %8.2fx %8.2fx %8.1f%% %6d%s\n",
			w.Name, res.Seq.Cycles, res.SpeedupActual(), res.SpeedupPredicted(),
			res.TotalSpeedup(), res.ProfileSlowdown()*100, res.TLS.Violations, status)
		if *loops {
			printDecisions(res)
		}
	}
}

func printDecisions(res *core.Result) {
	for _, d := range res.Analysis.Decisions {
		mark := " "
		if d.Selected {
			mark = "*"
		}
		extra := ""
		if d.Stats != nil {
			extra = fmt.Sprintf(" iters=%d entries=%d T=%.0f ovf=%.2f",
				d.Stats.Iterations, d.Stats.Entries, d.Stats.AvgThreadSize(),
				d.Stats.OverflowFreq())
		}
		tags := ""
		if d.Inner {
			tags += " multilevel-inner"
		}
		if d.Multilevel {
			tags += " multilevel-outer"
		}
		if d.Hoisted {
			tags += " hoisted"
		}
		fmt.Printf("  %s loop %4d (m%d.%d depth %d) pred=%.2f cov=%4.1f%% ind=%d res=%d red=%d sync=%d comm=%d%s — %s%s\n",
			mark, d.LoopID, d.MethodID, d.LoopIndex, d.Depth,
			d.Prediction.Speedup, 100*d.Coverage,
			d.Inductors, d.Resetable, d.Reductions, d.SyncLocks, d.Comm,
			tags, d.Reason, extra)
	}
}
