// Quickstart: write a small Java-like program with the frontend, push it
// through the complete Jrpm pipeline (Figure 1 of the paper), and inspect
// what the system did — all in about forty lines.
package main

import (
	"fmt"
	"log"

	"jrpm/internal/core"
	fe "jrpm/internal/frontend"
)

func main() {
	// A sequential program: sum of i*i over a vector, via an array.
	p := fe.NewProgram("quickstart")
	p.Func("main", nil, false).Body(
		fe.Set("a", fe.NewArr(fe.I(512))),
		fe.ForUp("i", fe.I(0), fe.I(512),
			fe.SetIdx(fe.L("a"), fe.L("i"), fe.Mul(fe.L("i"), fe.L("i"))),
		),
		fe.Set("sum", fe.I(0)),
		fe.ForUp("j", fe.I(0), fe.I(512),
			fe.Set("sum", fe.Add(fe.L("sum"), fe.Idx(fe.L("a"), fe.L("j")))),
		),
		fe.Print(fe.L("sum")),
	)

	// Run the five-step pipeline on the 4-CPU Hydra with TLS support.
	res, err := core.Run(p.MustBuild(), core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("program output:        ", res.TLS.Output)
	fmt.Println("outputs sequential==TLS:", res.OutputsMatch)
	fmt.Printf("sequential time:        %d cycles\n", res.Seq.Cycles)
	fmt.Printf("speculative time:       %d cycles (%.2fx speedup)\n",
		res.TLS.Cycles, res.SpeedupActual())
	fmt.Printf("TEST predicted:         %.2fx\n", res.SpeedupPredicted())
	fmt.Printf("profiling overhead:     %.1f%%\n", res.ProfileSlowdown()*100)
	for _, d := range res.Analysis.Decisions {
		if d.Selected {
			fmt.Printf("selected loop %d: predicted %.2fx, %d inductor(s), %d reduction(s)\n",
				d.LoopID, d.Prediction.Speedup, d.Inductors, d.Reductions)
		}
	}
}
