// Profiler: use the TEST hardware profiler standalone — compile a program
// with annotation instructions, run it sequentially, and read the per-loop
// dependency timing, thread size and buffer statistics that drive STL
// selection (paper §3). No speculation is involved; this is exactly the
// Figure 1 step 2 data.
package main

import (
	"fmt"
	"log"
	"sort"

	"jrpm/internal/cfg"
	fe "jrpm/internal/frontend"
	"jrpm/internal/hydra"
	"jrpm/internal/jit"
	"jrpm/internal/tracer"
	"jrpm/internal/vm"
)

func main() {
	// A loop nest with three different dependency characters:
	// - the outer loop carries an accumulator (a reduction);
	// - the first inner loop is independent;
	// - the second inner loop carries `state` (a true serial chain).
	p := fe.NewProgram("profiled")
	p.Func("main", nil, false).Body(
		fe.Set("a", fe.NewArr(fe.I(64))),
		fe.Set("acc", fe.I(0)),
		fe.Set("state", fe.I(1)),
		fe.ForUp("t", fe.I(0), fe.I(20),
			fe.ForUp("i", fe.I(0), fe.I(64),
				fe.SetIdx(fe.L("a"), fe.L("i"), fe.Mul(fe.L("i"), fe.L("t"))),
			),
			fe.ForUp("j", fe.I(0), fe.I(64),
				fe.Set("state", fe.Rem(fe.Add(fe.Mul(fe.L("state"), fe.I(31)),
					fe.Idx(fe.L("a"), fe.L("j"))), fe.I(99991))),
			),
			fe.Set("acc", fe.Add(fe.L("acc"), fe.L("state"))),
		),
		fe.Print(fe.L("acc")),
	)
	bp := p.MustBuild()
	info := cfg.AnalyzeProgram(bp)

	// Compile with TEST annotations and run on one CPU with the profiler on.
	img, _, err := jit.Compile(bp, info, jit.ModeAnnotated, nil)
	if err != nil {
		log.Fatal(err)
	}
	rt := vm.New(bp, vm.DefaultConfig())
	opts := hydra.DefaultOptions()
	opts.Profile = true
	m := hydra.NewMachine(img, rt, opts)
	m.Boot()
	rt.Install(m)
	if err := m.Run(100_000_000); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sequential run: %d cycles, %d annotation events\n\n",
		m.Clock, m.Tracer.AnnotationCount)

	var ids []int64
	for id := range m.Tracer.Loops() {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ls := m.Tracer.Loop(id)
		fmt.Printf("loop %d: %d entries, %d iterations, avg thread %.0f cycles\n",
			id, ls.Entries, ls.Iterations, ls.AvgThreadSize())
		fmt.Printf("  dependency frequency %.0f%%, overflow frequency %.0f%%\n",
			100*ls.DepFreq(), 100*ls.OverflowFreq())
		for key, ds := range ls.Deps {
			kind := fmt.Sprintf("local slot %d", key&0xff)
			if key == tracer.HeapDepKey {
				kind = "heap"
			}
			fmt.Printf("  arc (%s): %d iterations, distance %.1f, store@%.0f -> load@%.0f\n",
				kind, ds.Iters, ds.AvgDist(), ds.AvgStoreOff(), ds.AvgLoadOff())
		}
		pred := ls.Predict(tracer.DefaultPredictParams(4, 23, 16, 5, 0))
		fmt.Printf("  predicted STL speedup on 4 CPUs: %.2fx\n\n", pred.Speedup)
	}
}
