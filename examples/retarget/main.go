// Retargeting: the same binary, three machines. One of Jrpm's claims is
// that because parallelization happens at run time, decompositions retarget
// to the hardware automatically — a future CMP with more CPUs or bigger
// speculative buffers just reruns profiling and picks different loops. This
// example runs one workload on 2-, 4- and 8-CPU Hydras and on a
// small-buffer variant, showing the selections and speedups adapt.
package main

import (
	"fmt"
	"log"

	"jrpm/internal/core"
	"jrpm/internal/tls"
	"jrpm/internal/workloads"
)

func main() {
	w := workloads.ByName("LuFactor")
	fmt.Printf("workload: %s (%s)\n\n", w.Name, w.Description)

	for _, ncpu := range []int{2, 4, 8} {
		opts := core.DefaultOptions()
		opts.NCPU = ncpu
		res, err := core.Run(w.Build(), opts)
		if err != nil {
			log.Fatal(err)
		}
		selected := 0
		for _, d := range res.Analysis.Decisions {
			if d.Selected {
				selected++
			}
		}
		fmt.Printf("%d CPUs: %d STLs selected, %.2fx speedup (predicted %.2fx)\n",
			ncpu, selected, res.SpeedupActual(), res.SpeedupPredicted())
	}

	// Shrink the speculative store buffer: per-iteration state that fits
	// comfortably at 64 lines hits the 8-line limit at run time, forcing
	// overflow stalls (threads wait to become the head before continuing)
	// and eroding the speedup — the operating point where reprofiling for
	// the smaller machine would pick a lower loop level.
	fmt.Println()
	for _, lines := range []int{64, 8} {
		opts := core.DefaultOptions()
		cfg := tls.DefaultConfig(opts.NCPU)
		cfg.StoreBufferLines = lines
		opts.TLS = &cfg
		res, err := core.Run(w.Build(), opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("store buffer %3d lines: %.2fx speedup, %d overflow stalls\n",
			lines, res.SpeedupActual(), res.TLS.Overflows)
		for _, d := range res.Analysis.Decisions {
			if d.Selected {
				fmt.Printf("  selected loop %d (depth %d, predicted %.2fx)\n",
					d.LoopID, d.Depth, d.Prediction.Speedup)
			}
		}
	}
}
