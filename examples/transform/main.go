// Transform: the paper's Table 4 workflow in miniature. TEST feedback
// identifies the critical dependency in a loop; a small source change
// ("guided by TEST profiling results", §6.2) exposes the parallelism; the
// system then speeds the loop up automatically. This example shows the
// before/after of the monteCarlo transformation with the profiler's view of
// each version.
package main

import (
	"fmt"
	"log"

	"jrpm/internal/core"
	"jrpm/internal/workloads"
)

func main() {
	w := workloads.ByName("monteCarlo")
	fmt.Printf("workload: %s\n%s\n\n", w.Name, w.Description)

	show := func(label string, res *core.Result) {
		fmt.Printf("%s:\n", label)
		fmt.Printf("  sequential %d cycles, speculative %d cycles -> %.2fx\n",
			res.Seq.Cycles, res.TLS.Cycles, res.SpeedupActual())
		for _, d := range res.Analysis.Decisions {
			if d.Stats == nil || d.Coverage < 0.10 {
				continue
			}
			fmt.Printf("  loop %d (%.0f%% coverage): %s; dep freq %.0f%%, %d sync lock(s)\n",
				d.LoopID, 100*d.Coverage, d.Reason, 100*d.Stats.DepFreq(), d.SyncLocks)
		}
		fmt.Println()
	}

	base, err := core.Run(w.Build(), core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	show("original (RNG seed carried through every sample)", base)

	tr, err := core.Run(w.BuildTransformed(), core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	show("transformed (seed stream pre-generated serially)", tr)

	t := w.Transformed
	fmt.Printf("Table 4 row: difficulty %s, ~%d lines changed, compiler-automatable: %v\n",
		t.Difficulty, t.Lines, t.CompilerAuto)
	fmt.Printf("%q\n", t.Note)
}
