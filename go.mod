module jrpm

go 1.22
